package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/xpath"
	"repro/server"
	"repro/wal"
)

// startNode boots one loopback xpushserve node with lossless backpressure
// (Block + deep queues), so differential runs cannot diverge on drops.
func startNode(t testing.TB, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Policy == "" {
		cfg.Policy = server.Block
		cfg.QueueDepth = 4096
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// startGate boots a gate over the given nodes with fast failure detection.
func startGate(t testing.TB, nodes []string, mutate func(*Config)) *Gate {
	t.Helper()
	cfg := Config{
		Nodes:        nodes,
		Client:       client.Options{Timeout: 5 * time.Second},
		Backoff:      client.Backoff{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		PingInterval: 50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func waitUntil(t testing.TB, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tally is a per-subscriber delivery multiset: ordinal -> doc -> count,
// where ordinal is the subscription's subscribe order on its connection
// (the normalization that makes gate ids comparable with broker ids).
type tally struct {
	mu    sync.Mutex
	total int
	byOrd map[int]map[string]int
}

func newTally() *tally { return &tally{byOrd: map[int]map[string]int{}} }

func (ta *tally) add(ord int, doc string) {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	m := ta.byOrd[ord]
	if m == nil {
		m = map[string]int{}
		ta.byOrd[ord] = m
	}
	m[doc]++
	ta.total++
}

func (ta *tally) count() int {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	return ta.total
}

func (ta *tally) snapshot() map[int]map[string]int {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	out := map[int]map[string]int{}
	for ord, m := range ta.byOrd {
		c := map[string]int{}
		for d, n := range m {
			c[d] = n
		}
		out[ord] = c
	}
	return out
}

// scriptSub is one scripted subscriber connection.
type scriptSub struct {
	c     *client.Client
	tally *tally
	mu    sync.Mutex
	ord   map[uint64]int // subscription id -> subscribe ordinal
	live  []uint64       // live ids in subscribe order (deterministic unsub targets)
	next  int
}

func (s *scriptSub) deliver(d client.Delivery) {
	s.mu.Lock()
	ords := make([]int, 0, len(d.Filters))
	for _, id := range d.Filters {
		if o, ok := s.ord[id]; ok {
			ords = append(ords, o)
		}
	}
	s.mu.Unlock()
	for _, o := range ords {
		s.tally.add(o, string(d.Doc))
	}
}

// op is one scripted action; the same script replays identically against a
// direct broker and a gated cluster.
type op struct {
	kind int // 0 publish, 1 subscribe, 2 unsubscribe
	sub  int // subscriber index (subscribe/unsubscribe)
	arg  int // filter index (subscribe), doc index (publish), live index (unsubscribe)
}

var scriptFilters = []string{
	"//order", "//order[status=\"new\"]", "/catalog/item", "//item[@id=\"7\"]",
	"//dept//emp", "/log/entry[level=\"error\"]", "//a/b", "//a[b=\"1\"]",
}

var scriptDocs = []string{
	`<order><status>new</status><sku>1</sku></order>`,
	`<order><status>done</status></order>`,
	`<catalog><item id="7">x</item></catalog>`,
	`<catalog><item id="9">y</item></catalog>`,
	`<dept><emp>ann</emp></dept>`,
	`<log><entry><level>error</level></entry></log>`,
	`<log><entry><level>info</level></entry></log>`,
	`<a><b>1</b></a>`,
	`<a><c>2</c></a>`,
	`<root><none/></root>`,
}

// genScript builds a seeded randomized publish/subscribe/churn sequence.
func genScript(seed int64, n, nSubs int) []op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch r := rng.Intn(100); {
		case r < 55:
			ops = append(ops, op{kind: 0, arg: rng.Intn(len(scriptDocs))})
		case r < 85:
			ops = append(ops, op{kind: 1, sub: rng.Intn(nSubs), arg: rng.Intn(len(scriptFilters))})
		default:
			ops = append(ops, op{kind: 2, sub: rng.Intn(nSubs), arg: rng.Intn(16)})
		}
	}
	return ops
}

// runScript replays ops against the broker at addr: nSubs subscriber
// connections plus one publisher, every operation a sequential round trip.
// It returns each subscriber's delivery multiset and the per-publish match
// counts.
func runScript(t *testing.T, addr string, nSubs int, ops []op) ([]*tally, []int) {
	t.Helper()
	subs := make([]*scriptSub, nSubs)
	for i := range subs {
		s := &scriptSub{tally: newTally(), ord: map[uint64]int{}}
		c, err := client.Dial(addr, client.Options{Timeout: 10 * time.Second, OnDeliver: s.deliver})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		s.c = c
		subs[i] = s
	}
	pub, err := client.Dial(addr, client.Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })

	var matches []int
	for _, o := range ops {
		switch o.kind {
		case 0:
			n, err := pub.Publish([]byte(scriptDocs[o.arg]))
			if err != nil {
				t.Fatalf("publish: %v", err)
			}
			matches = append(matches, n)
		case 1:
			s := subs[o.sub]
			id, err := s.c.Subscribe(scriptFilters[o.arg])
			if err != nil {
				t.Fatalf("subscribe %q: %v", scriptFilters[o.arg], err)
			}
			s.mu.Lock()
			s.ord[id] = s.next
			s.next++
			s.live = append(s.live, id)
			s.mu.Unlock()
		case 2:
			s := subs[o.sub]
			s.mu.Lock()
			if len(s.live) == 0 {
				s.mu.Unlock()
				continue
			}
			idx := o.arg % len(s.live)
			id := s.live[idx]
			s.live = append(s.live[:idx], s.live[idx+1:]...)
			s.mu.Unlock()
			if err := s.c.Unsubscribe(id); err != nil {
				t.Fatalf("unsubscribe %d: %v", id, err)
			}
		}
	}
	tallies := make([]*tally, nSubs)
	for i, s := range subs {
		tallies[i] = s.tally
	}
	return tallies, matches
}

// TestGateDifferentialMatchSets is the acceptance e2e: the same randomized
// publish/subscribe/churn sequence against a 2-node gated cluster and a
// single direct broker yields identical per-publish match counts and
// identical per-subscriber delivery multisets.
func TestGateDifferentialMatchSets(t *testing.T) {
	const nSubs = 3
	ops := genScript(42, 400, nSubs)

	direct := startNode(t, server.Config{})
	wantTallies, wantMatches := runScript(t, direct.Addr(), nSubs, ops)

	n1 := startNode(t, server.Config{})
	n2 := startNode(t, server.Config{})
	g := startGate(t, []string{n1.Addr(), n2.Addr()}, nil)
	gotTallies, gotMatches := runScript(t, g.Addr(), nSubs, ops)

	if len(gotMatches) != len(wantMatches) {
		t.Fatalf("publish count mismatch: %d vs %d", len(gotMatches), len(wantMatches))
	}
	for i := range wantMatches {
		if gotMatches[i] != wantMatches[i] {
			t.Fatalf("publish %d: gated matched %d, direct matched %d", i, gotMatches[i], wantMatches[i])
		}
	}
	// Both brokers ack publishes before deliveries drain; wait for the gated
	// run to reach the direct run's totals, then a grace beat to catch
	// over-delivery.
	for i := range wantTallies {
		i := i
		waitUntil(t, fmt.Sprintf("subscriber %d deliveries (%d)", i, wantTallies[i].count()),
			func() bool { return gotTallies[i].count() >= wantTallies[i].count() })
	}
	time.Sleep(200 * time.Millisecond)
	for i := range wantTallies {
		want, got := wantTallies[i].snapshot(), gotTallies[i].snapshot()
		if len(got) != len(want) {
			t.Fatalf("subscriber %d: %d delivered ordinals vs %d direct", i, len(got), len(want))
		}
		for ord, wantDocs := range want {
			gotDocs := got[ord]
			for doc, n := range wantDocs {
				if gotDocs[doc] != n {
					t.Fatalf("subscriber %d ordinal %d doc %q: gated %d deliveries, direct %d", i, ord, doc, gotDocs[doc], n)
				}
			}
			if len(gotDocs) != len(wantDocs) {
				t.Fatalf("subscriber %d ordinal %d: gated saw %d distinct docs, direct %d", i, ord, len(gotDocs), len(wantDocs))
			}
		}
	}
}

// TestGateSpreadsAcrossNodes sanity-checks the point of the exercise: a
// mixed filter population lands on both nodes.
func TestGateSpreadsAcrossNodes(t *testing.T) {
	n1 := startNode(t, server.Config{})
	n2 := startNode(t, server.Config{})
	g := startGate(t, []string{n1.Addr(), n2.Addr()}, nil)

	s := &scriptSub{tally: newTally(), ord: map[uint64]int{}}
	c, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: s.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, f := range scriptFilters {
		if _, err := c.Subscribe(f); err != nil {
			t.Fatal(err)
		}
	}
	k1, k2 := g.liveKeys[n1.Addr()].Load(), g.liveKeys[n2.Addr()].Load()
	if k1 == 0 || k2 == 0 {
		t.Fatalf("filters did not spread: node1=%d node2=%d", k1, k2)
	}
	if int(k1+k2) != len(scriptFilters) {
		t.Fatalf("live keys %d+%d, want %d", k1, k2, len(scriptFilters))
	}
	if n1.NumSubscriptions()+n2.NumSubscriptions() != len(scriptFilters) {
		t.Fatalf("node-side subscriptions %d+%d, want %d", n1.NumSubscriptions(), n2.NumSubscriptions(), len(scriptFilters))
	}
}

// TestGateFailoverResubscribes is the node-kill acceptance test: killing
// one node moves its ephemeral subscriptions to the survivor, deliveries
// keep flowing, and the event is visible in the gate's counters.
func TestGateFailoverResubscribes(t *testing.T) {
	n1 := startNode(t, server.Config{})
	n2 := startNode(t, server.Config{})
	g := startGate(t, []string{n1.Addr(), n2.Addr()}, nil)

	s := &scriptSub{tally: newTally(), ord: map[uint64]int{}}
	c, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: s.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, f := range scriptFilters {
		id, err := c.Subscribe(f)
		if err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		s.ord[id] = s.next
		s.next++
		s.mu.Unlock()
	}
	waitUntil(t, "both nodes holding filters", func() bool {
		return g.liveKeys[n1.Addr()].Load() > 0 && g.liveKeys[n2.Addr()].Load() > 0
	})

	// Kill node 1; every subscription must end up on node 2.
	victim, survivor := n1, n2
	victim.Close()
	waitUntil(t, "failover resubscribe", func() bool {
		return g.liveKeys[survivor.Addr()].Load() == int64(len(scriptFilters))
	})
	if g.mFailovers.Value() < 1 {
		t.Fatalf("failovers counter = %d, want >= 1", g.mFailovers.Value())
	}
	if g.mFailoverResubs.Value() < 1 {
		t.Fatal("no resubscribes counted")
	}
	if g.mFailoverDrops.Value() != 0 {
		t.Fatalf("dropped %d subscriptions with a survivor available", g.mFailoverDrops.Value())
	}
	waitUntil(t, "survivor compiled all filters", func() bool {
		return survivor.NumSubscriptions() == len(scriptFilters)
	})

	// Publishes now reach only the survivor and still match everything.
	pub, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	n, err := pub.Publish([]byte(`<order><status>new</status></order>`))
	if err != nil {
		t.Fatalf("publish after failover: %v", err)
	}
	if n != 2 { // //order and //order[status="new"]
		t.Fatalf("matches after failover = %d, want 2", n)
	}
	waitUntil(t, "post-failover delivery", func() bool { return s.tally.count() >= 2 })
}

// TestGateDurableThroughGate: durable subscribe routes by name, deliveries
// carry node offsets, acks are forwarded within the delivered window, and a
// reconnect under the same name resumes from the node-persisted cursor.
func TestGateDurableThroughGate(t *testing.T) {
	base := t.TempDir()
	var stores []*wal.CursorStore
	mkNode := func(sub string) *server.Server {
		l, err := wal.Open(wal.Options{Dir: filepath.Join(base, sub, "wal"), Fsync: wal.FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		cs, err := wal.OpenCursorStore(filepath.Join(base, sub, "cursors"))
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, cs)
		return startNode(t, server.Config{WAL: server.WrapWAL(l), Cursors: cs})
	}
	n1 := mkNode("n1")
	n2 := mkNode("n2")
	g := startGate(t, []string{n1.Addr(), n2.Addr()}, nil)

	col := &durCol{}
	c, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: col.deliver})
	if err != nil {
		t.Fatal(err)
	}
	_, resume, err := c.SubscribeDurable("audit", "//order")
	if err != nil {
		t.Fatalf("durable subscribe through gate: %v", err)
	}

	pub, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 3; i++ {
		if _, err := pub.Publish([]byte(fmt.Sprintf(`<order><sku>%d</sku></order>`, i))); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "3 durable deliveries", func() bool { return col.count() == 3 })

	// More filters under the same name are allowed (broker semantics: one
	// name per connection, any number of filters under it) and share the
	// name's node and offset sequence.
	if _, _, err := c.SubscribeDurable("audit", "/catalog/item"); err != nil {
		t.Fatalf("second filter under same durable name: %v", err)
	}
	if _, err := pub.Publish([]byte(`<catalog><item>z</item></catalog>`)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "delivery via second filter", func() bool { return col.count() == 4 })

	// A second durable name on the same connection must be refused,
	// mirroring the broker's one-name-per-connection rule.
	if _, _, err := c.SubscribeDurable("other", "//order"); err == nil {
		t.Fatal("second durable name on one connection accepted")
	}

	// Ack the last delivered offset: inside the forwarded window.
	last := col.last()
	if err := c.Ack(last); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "ack forwarded", func() bool { return g.mAcksFwd.Value() >= 1 })
	if g.mAcksDropped.Value() != 0 {
		t.Fatalf("in-window ack dropped (%d)", g.mAcksDropped.Value())
	}
	// ACK is fire-and-forget end to end; wait for the owning node to
	// persist the cursor before reconnecting under the same name.
	waitUntil(t, "cursor persisted past ack", func() bool {
		for _, cs := range stores {
			if off, ok, _ := cs.Load("audit"); ok && off > last {
				return true
			}
		}
		return false
	})
	c.Close()

	// Reconnect under the same name: replay resumes past the acked cursor,
	// from the node-persisted offset.
	col2 := &durCol{}
	c2, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: col2.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, resume2, err := c2.SubscribeDurable("audit", "//order")
	if err != nil {
		t.Fatal(err)
	}
	if resume2 <= resume {
		t.Fatalf("resume did not advance after ack: %d -> %d", resume, resume2)
	}
	if _, err := pub.Publish([]byte(`<order><sku>9</sku></order>`)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-reconnect durable delivery", func() bool { return col2.count() >= 1 })
}

// durCol collects durable deliveries and their offsets.
type durCol struct {
	mu   sync.Mutex
	offs []uint64
}

func (c *durCol) deliver(d client.Delivery) {
	if !d.Durable {
		return
	}
	c.mu.Lock()
	c.offs = append(c.offs, d.Offset)
	c.mu.Unlock()
}

func (c *durCol) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.offs)
}

func (c *durCol) last() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offs[len(c.offs)-1]
}

// TestGatePipelinedPublish drives PUBLISH_ASYNC through the gate: the
// window pipelines, every document is acked with its aggregate match
// count, and deliveries complete.
func TestGatePipelinedPublish(t *testing.T) {
	n1 := startNode(t, server.Config{})
	n2 := startNode(t, server.Config{})
	g := startGate(t, []string{n1.Addr(), n2.Addr()}, nil)

	s := &scriptSub{tally: newTally(), ord: map[uint64]int{}}
	c, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: s.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Subscribe("//order")
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.ord[id] = 0
	s.mu.Unlock()

	pub, err := client.Dial(g.Addr(), client.Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	var acked, matched int
	var mu sync.Mutex
	p, err := pub.PublishPipelined(32, func(r client.PublishResult) {
		mu.Lock()
		defer mu.Unlock()
		acked++
		matched += r.Matches
		if r.Err != nil {
			t.Errorf("pipelined publish %d: %v", r.Seq, r.Err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	const docs = 200
	for i := 0; i < docs; i++ {
		if _, err := p.Publish([]byte(fmt.Sprintf(`<order><sku>%d</sku></order>`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if acked != docs || matched != docs {
		mu.Unlock()
		t.Fatalf("acked %d matched %d, want %d each", acked, matched, docs)
	}
	mu.Unlock()
	waitUntil(t, "pipelined deliveries", func() bool { return s.tally.count() == docs })
}

// TestGateMetricsAndDebug scrapes the gate's observability surface.
func TestGateMetricsAndDebug(t *testing.T) {
	n1 := startNode(t, server.Config{})
	n2 := startNode(t, server.Config{})
	g := startGate(t, []string{n1.Addr(), n2.Addr()}, func(c *Config) { c.MetricsAddr = "127.0.0.1:0" })
	waitUntil(t, "nodes connected", func() bool {
		return g.pool.Up(n1.Addr()) && g.pool.Up(n2.Addr())
	})

	c, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe("//order"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish([]byte(`<order/>`)); err != nil {
		t.Fatal(err)
	}

	body := httpGet(t, "http://"+g.MetricsAddr()+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("xpushgate_node_up{node=%q} 1", n1.Addr()),
		fmt.Sprintf("xpushgate_node_up{node=%q} 1", n2.Addr()),
		"xpushgate_node_live_keys{",
		"xpushgate_publish_fanout_nodes_count 1",
		"xpushgate_node_ack_latency_seconds_count{",
		"xpushgate_publishes_total 1",
		"xpushgate_failovers_total 0",
		"xpushgate_connections 1",
		"xpushgate_subscriptions 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("metrics body:\n%s", body)
	}

	if got := httpGet(t, "http://"+g.MetricsAddr()+"/healthz"); got != "ok\n" {
		t.Fatalf("healthz = %q", got)
	}

	var dbg struct {
		Nodes []struct {
			Node     string `json:"node"`
			Up       bool   `json:"up"`
			LiveKeys int64  `json:"live_keys"`
		} `json:"nodes"`
		Connections   int64 `json:"connections"`
		Subscriptions int64 `json:"subscriptions"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+g.MetricsAddr()+"/debug/cluster")), &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Nodes) != 2 || !dbg.Nodes[0].Up || !dbg.Nodes[1].Up {
		t.Fatalf("debug nodes = %+v", dbg.Nodes)
	}
	if dbg.Connections != 1 || dbg.Subscriptions != 1 {
		t.Fatalf("debug totals = %+v", dbg)
	}
}

func httpGet(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGateRejectsBadFilter: a filter the canonicalizer rejects fails the
// subscribe with an error reply, not a dropped connection.
func TestGateRejectsBadFilter(t *testing.T) {
	n1 := startNode(t, server.Config{})
	g := startGate(t, []string{n1.Addr()}, nil)
	c, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe("///not[a[valid"); err == nil {
		t.Fatal("invalid filter accepted")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after rejected filter: %v", err)
	}
}

// TestGateDurableNameRouting: the durable route key is the name, not the
// filter — two names with the same filter may land on different nodes, and
// the same name always lands on one.
func TestGateDurableNameRouting(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := xpath.Canonicalize("//order")
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner(durableRouteKey("x")) == r.Owner(canon) &&
		r.Owner(durableRouteKey("y")) == r.Owner(canon) &&
		r.Owner(durableRouteKey("z")) == r.Owner(canon) &&
		r.Owner(durableRouteKey("w")) == r.Owner(canon) {
		t.Fatal("durable names suspiciously co-located with their filter's owner")
	}
}
