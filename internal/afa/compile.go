package afa

import (
	"fmt"
	"sort"

	"repro/internal/xmlval"
	"repro/internal/xpath"
)

// CompileError reports a filter outside the supported fragment.
type CompileError struct {
	Query  int
	Source string
	Msg    string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("afa: query %d (%s): %s", e.Query, e.Source, e.Msg)
}

// Compile translates a workload of parsed XPath filters into the union AFA,
// one automaton per filter over a shared symbol table (Sec. 3.2, step 1).
func Compile(filters []*xpath.Filter) (*AFA, error) {
	b := &builder{
		a: &AFA{Syms: NewSymbols()},
	}
	for i, f := range filters {
		init, err := b.compileFilter(f, int32(i))
		if err != nil {
			return nil, err
		}
		b.a.Queries = append(b.a.Queries, QueryInfo{
			Initial:       init,
			HasDescendant: f.HasDescendant(),
			Source:        f.Source,
		})
	}
	b.finalize()
	return b.a, nil
}

// MustCompile panics on error; for statically known workloads.
func MustCompile(filters ...*xpath.Filter) *AFA {
	a, err := Compile(filters)
	if err != nil {
		panic(err)
	}
	return a
}

type builder struct {
	a     *AFA
	query int32
	src   string
}

func (b *builder) newState(kind StateKind) int32 {
	id := int32(len(b.a.states))
	b.a.states = append(b.a.states, state{kind: kind, query: b.query})
	return id
}

func (b *builder) newLeaf(op xmlval.Op, c xmlval.Const) int32 {
	id := b.newState(OR)
	st := &b.a.states[id]
	st.terminal = LeafTerminal
	st.op = op
	st.konst = c
	b.a.leafCount++
	return id
}

func (b *builder) newTrueTerminal() int32 {
	id := b.newState(OR)
	b.a.states[id].terminal = TrueTerminal
	return id
}

func (b *builder) addEdge(from, sym, to int32) {
	b.a.states[from].edges = append(b.a.states[from].edges, edge{sym: sym, to: to})
}

func (b *builder) addEps(from, to int32) {
	b.a.states[from].eps = append(b.a.states[from].eps, to)
}

func (b *builder) errf(format string, args ...any) error {
	return &CompileError{Query: int(b.query), Source: b.src, Msg: fmt.Sprintf(format, args...)}
}

func (b *builder) compileFilter(f *xpath.Filter, q int32) (int32, error) {
	b.query = q
	b.src = f.Source
	if b.src == "" {
		b.src = f.String()
	}
	return b.compilePath(f.Path, nil)
}

// cmpSpec is the trailing comparison of a Cmp predicate; nil means a bare
// existence path.
type cmpSpec struct {
	op xmlval.Op
	c  xmlval.Const
}

// compilePath builds the state chain for a path evaluated from a context
// node and returns the entry state (the state that matches the context
// node). With cmp set, the path's target value is compared; otherwise the
// path is an existence test.
func (b *builder) compilePath(path *xpath.Path, cmp *cmpSpec) (int32, error) {
	steps := path.Steps
	// A trailing text() step folds into the terminal: the leaf predicate
	// is activated by tvalue inside the element that owns the text.
	textStep := false
	textDescendant := false
	if n := len(steps); n > 0 && steps[n-1].Test.Kind == xpath.Text {
		textStep = true
		textDescendant = steps[n-1].Axis == xpath.Descendant
		steps = steps[:n-1]
	}
	// Drop self steps: ./x ≡ x. A descendant-or-self step (a//.) is
	// outside the supported fragment.
	kept := make([]xpath.Step, 0, len(steps))
	for _, s := range steps {
		if s.Test.Kind == xpath.Self {
			if s.Axis == xpath.Descendant {
				return 0, b.errf("descendant-or-self step (//.) not supported")
			}
			continue
		}
		kept = append(kept, s)
	}
	steps = kept

	// Build the terminal leaf, if any.
	var leaf int32 = -1
	switch {
	case cmp != nil:
		leaf = b.newLeaf(cmp.op, cmp.c)
	case textStep:
		// Bare text() existence: true on any data value.
		leaf = b.newLeaf(xmlval.OpExists, xmlval.Const{})
	}

	if len(steps) == 0 {
		// Self-only path: [.] / [.=c] / [text()=c] / [.//text()].
		if leaf < 0 {
			// exists(.): trivially true on any node.
			return b.newTrueTerminal(), nil
		}
		if textDescendant {
			// .//text(): text at any depth below the context.
			s := b.newState(OR)
			b.addEdge(s, SymAnyElem, s)
			b.addEps(s, leaf)
			return s, nil
		}
		return leaf, nil
	}

	entry := b.newState(OR)
	cur := entry
	for i := range steps {
		step := &steps[i]
		sym, err := b.stepSymbol(step)
		if err != nil {
			return 0, err
		}
		if step.Axis == xpath.Descendant {
			// Descendant axis: the context state loops on any
			// element before consuming the label.
			b.addEdge(cur, SymAnyElem, cur)
		}
		preds, err := b.compilePreds(step.Preds)
		if err != nil {
			return 0, err
		}
		last := i == len(steps)-1
		if !last {
			cont := b.newState(OR)
			tgt := cont
			if len(preds) > 0 {
				tgt = b.mkAnd(append(preds, cont))
			}
			b.addEdge(cur, sym, tgt)
			cur = cont
			continue
		}
		// Final step: attach the terminal.
		parts := preds
		if leaf >= 0 {
			if textDescendant {
				s := b.newState(OR)
				b.addEdge(s, SymAnyElem, s)
				b.addEps(s, leaf)
				parts = append(parts, s)
			} else {
				parts = append(parts, leaf)
			}
		}
		if len(parts) == 0 {
			parts = []int32{b.newTrueTerminal()}
		}
		b.addEdge(cur, sym, b.mkAnd(parts))
	}
	return entry, nil
}

func (b *builder) stepSymbol(step *xpath.Step) (int32, error) {
	switch step.Test.Kind {
	case xpath.Element:
		return b.a.Syms.Intern(step.Test.Name), nil
	case xpath.AnyElement:
		return SymAnyElem, nil
	case xpath.Attribute:
		return b.a.Syms.Intern("@" + step.Test.Name), nil
	case xpath.AnyAttribute:
		return SymAnyAttr, nil
	default:
		return 0, b.errf("unexpected node test %s in navigation", step.Test)
	}
}

// compilePreds compiles a step's predicate list to pred-root states.
func (b *builder) compilePreds(preds []xpath.Expr) ([]int32, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	out := make([]int32, 0, len(preds))
	for _, q := range preds {
		s, err := b.compileExpr(q)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// compileExpr compiles a predicate expression to a state matching the
// context node iff the expression holds there.
func (b *builder) compileExpr(e xpath.Expr) (int32, error) {
	switch x := e.(type) {
	case *xpath.And:
		conj := flattenAnd(x, nil)
		parts := make([]int32, 0, len(conj))
		for _, c := range conj {
			s, err := b.compileExpr(c)
			if err != nil {
				return 0, err
			}
			parts = append(parts, s)
		}
		return b.mkAnd(parts), nil
	case *xpath.Or:
		disj := flattenOr(x, nil)
		parts := make([]int32, 0, len(disj))
		for _, c := range disj {
			s, err := b.compileExpr(c)
			if err != nil {
				return 0, err
			}
			parts = append(parts, s)
		}
		if len(parts) == 1 {
			return parts[0], nil
		}
		s := b.newState(OR)
		for _, p := range parts {
			b.addEps(s, p)
		}
		return s, nil
	case *xpath.Not:
		child, err := b.compileExpr(x.X)
		if err != nil {
			return 0, err
		}
		s := b.newState(NOT)
		b.addEps(s, child)
		return s, nil
	case *xpath.Exists:
		return b.compilePath(x.Path, nil)
	case *xpath.Cmp:
		return b.compilePath(x.Path, &cmpSpec{op: x.Op, c: x.Const})
	default:
		return 0, b.errf("unknown expression %T", e)
	}
}

// mkAnd combines conjunct states, collapsing the single-conjunct case.
func (b *builder) mkAnd(parts []int32) int32 {
	if len(parts) == 1 {
		return parts[0]
	}
	s := b.newState(AND)
	for _, p := range parts {
		b.addEps(s, p)
	}
	return s
}

func flattenAnd(e xpath.Expr, out []xpath.Expr) []xpath.Expr {
	if a, ok := e.(*xpath.And); ok {
		out = flattenAnd(a.L, out)
		return flattenAnd(a.R, out)
	}
	return append(out, e)
}

func flattenOr(e xpath.Expr, out []xpath.Expr) []xpath.Expr {
	if o, ok := e.(*xpath.Or); ok {
		out = flattenOr(o.L, out)
		return flattenOr(o.R, out)
	}
	return append(out, e)
}

// finalize builds derived structures: back edges, ε-parents, NOT ranks,
// terminal lists, initial set, and per-query early states.
func (b *builder) finalize() {
	a := b.a
	for i := range a.states {
		from := int32(i)
		for _, e := range a.states[i].edges {
			a.states[e.to].back = append(a.states[e.to].back, edge{sym: e.sym, to: from})
		}
		for _, t := range a.states[i].eps {
			a.states[t].epsParents = append(a.states[t].epsParents, from)
		}
		switch a.states[i].terminal {
		case TrueTerminal:
			a.trueTerminals = append(a.trueTerminals, from)
		}
	}
	sort.Slice(a.trueTerminals, func(i, j int) bool { return a.trueTerminals[i] < a.trueTerminals[j] })

	// NOT ranks via memoized DFS (self-loops excluded, so the graph is
	// acyclic for ranking purposes).
	ranks := make([]int16, len(a.states))
	done := make([]bool, len(a.states))
	var rank func(int32) int16
	rank = func(s int32) int16 {
		if done[s] {
			return ranks[s]
		}
		done[s] = true // self-loop guard; final value set below
		var r int16
		for _, t := range a.states[s].eps {
			if rr := rank(t); rr > r {
				r = rr
			}
		}
		for _, e := range a.states[s].edges {
			if e.to == s {
				continue
			}
			if rr := rank(e.to); rr > r {
				r = rr
			}
		}
		if a.states[s].kind == NOT {
			r++
		}
		ranks[s] = r
		return r
	}
	for i := range a.states {
		rank(int32(i))
	}
	for i := range a.states {
		a.states[i].notRank = ranks[i]
		if ranks[i] > a.maxNotRank {
			a.maxNotRank = ranks[i]
		}
	}
	a.notsByRank = make([][]int32, a.maxNotRank+1)
	for i := range a.states {
		if a.states[i].kind == NOT {
			r := ranks[i]
			a.notsByRank[r] = append(a.notsByRank[r], int32(i))
		}
	}

	gated := a.computeGated()
	for qi := range a.Queries {
		early := a.earlyState(a.Queries[qi].Initial)
		// Early notification is sound only for "gated" states: ones
		// whose firing implies the query's navigation prefix matched.
		// NOT states (and states whose truth can arrive purely through
		// NOT branches) fire at arbitrary nodes, so queries whose
		// first branching state is ungated opt out (Early = -1).
		if !gated[early] {
			early = -1
		}
		a.Queries[qi].Early = early
		a.initials = append(a.initials, a.Queries[qi].Initial)
		if a.Queries[qi].HasDescendant {
			a.anyDescends = true
		}
	}
	sort.Slice(a.initials, func(i, j int) bool { return a.initials[i] < a.initials[j] })
}

// computeGated classifies states by whether their firing is "navigation
// gated": a gated state can only appear in a bottom-up computation at a node
// reached through the query's actual navigation prefix (terminal states are
// gated because tvalue and the TrueTerminal injection are filtered by the
// top-down state; AND states are gated when at least one conjunct is; OR
// states need all alternatives gated; NOT states are never gated — they fire
// on absence, anywhere).
func (a *AFA) computeGated() []bool {
	gated := make([]bool, len(a.states))
	visited := make([]bool, len(a.states))
	var rec func(int32) bool
	rec = func(s int32) bool {
		if visited[s] {
			return gated[s]
		}
		visited[s] = true // self-loop guard: defaults to false while open
		st := &a.states[s]
		var g bool
		switch {
		case st.kind == NOT:
			g = false
		case st.terminal != NonTerminal:
			g = true
		case st.kind == AND:
			for _, c := range st.eps {
				if rec(c) {
					g = true
					break
				}
			}
		default: // OR: existential over ε children and non-self targets
			g = true
			for _, c := range st.eps {
				if !rec(c) {
					g = false
					break
				}
			}
			if g {
				for _, e := range st.edges {
					if e.to != s && !rec(e.to) {
						g = false
						break
					}
				}
			}
		}
		gated[s] = g
		return g
	}
	for i := range a.states {
		rec(int32(i))
	}
	return gated
}

// earlyState walks from the initial state down the unique non-branching
// chain and returns the first branching state (Sec. 5, early notification).
// For a linear filter this is the unique terminal state.
func (a *AFA) earlyState(init int32) int32 {
	s := init
	for steps := 0; steps < len(a.states)+1; steps++ {
		st := &a.states[s]
		if st.terminal != NonTerminal || st.kind == NOT {
			return s
		}
		var succ []int32
		for _, e := range st.edges {
			if e.to != s { // skip descendant self-loops
				succ = append(succ, e.to)
			}
		}
		succ = append(succ, st.eps...)
		if len(succ) != 1 {
			return s
		}
		s = succ[0]
	}
	return s
}

// ApplyOrder fills the prec lists used by the order optimization: for two
// states s, s' that are ε-children of the same AND state, s ≺ s' when every
// outgoing label of s precedes every outgoing label of s' under the sibling
// order; a state with a wildcard or self-loop transition is incomparable
// (Sec. 5). Calling ApplyOrder replaces any previous prec assignment.
func (a *AFA) ApplyOrder(order interface{ Precedes(x, y string) bool }) {
	for i := range a.states {
		a.states[i].prec = nil
	}
	for i := range a.states {
		if a.states[i].kind != AND {
			continue
		}
		children := a.states[i].eps
		for _, s := range children {
			for _, t := range children {
				if s == t {
					continue
				}
				if a.labelsPrecede(s, t, order) {
					// s ≺ t: record s in prec(t).
					a.states[t].prec = append(a.states[t].prec, s)
				}
			}
		}
	}
	for i := range a.states {
		p := a.states[i].prec
		sort.Slice(p, func(x, y int) bool { return p[x] < p[y] })
	}
}

// labelsPrecede reports whether every outgoing label of s precedes every
// outgoing label of t.
func (a *AFA) labelsPrecede(s, t int32, order interface{ Precedes(x, y string) bool }) bool {
	se, te := a.states[s].edges, a.states[t].edges
	if len(se) == 0 || len(te) == 0 {
		return false
	}
	for _, e1 := range se {
		if e1.sym == SymAnyElem || e1.sym == SymAnyAttr || e1.to == s {
			return false
		}
		for _, e2 := range te {
			if e2.sym == SymAnyElem || e2.sym == SymAnyAttr || e2.to == t {
				return false
			}
			if !order.Precedes(a.Syms.Name(e1.sym), a.Syms.Name(e2.sym)) {
				return false
			}
		}
	}
	return true
}
