package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/client"
	"repro/internal/trace"
	"repro/internal/xpath"
	"repro/server"
)

// gateSub is one subscription terminated at the gate: the gate-assigned id
// the subscriber sees, the canonical filter, the routing key it hashes by,
// and its current placement (node plus node-assigned id).
type gateSub struct {
	id       uint64 // gate-assigned, returned to the subscriber
	query    string // canonical filter text
	routeKey string // query, or durable name for durable subs
	durable  bool
	name     string // durable name ("" for ephemeral)
	node     string // current owning node
	nodeID   uint64 // node-assigned subscription id
}

// downstream is one per-(subscriber, node) connection carrying that
// subscriber's subscriptions on that node and the node's delivery stream
// back. ids maps node-assigned ids to gate ids; entries are kept after
// unsubscribe (tombstones) so deliveries already queued node-side still
// forward — the same late-delivery window a direct broker connection has.
type downstream struct {
	node string
	c    *client.Client

	mu  sync.Mutex
	ids map[uint64]uint64 // nodeID -> gateID, tombstones retained
}

func (ds *downstream) mapIDs(nodeIDs []uint64) []uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([]uint64, 0, len(nodeIDs))
	for _, nid := range nodeIDs {
		if gid, ok := ds.ids[nid]; ok {
			out = append(out, gid)
		}
	}
	return out
}

// gconn is one subscriber connection terminated at the gate.
type gconn struct {
	g  *Gate
	nc net.Conn
	bw *bufio.Writer

	wmu sync.Mutex // serializes writes (serve loop, downstream read loops, ack writer)

	// opMu serializes routing operations — subscribe, unsubscribe,
	// reroute — which perform node round trips. The serve loop holds it for
	// its own routing ops; reroute goroutines contend with it.
	opMu sync.Mutex

	mu     sync.Mutex
	subs   map[uint64]*gateSub
	nextID uint64
	dss    map[string]*downstream // node -> downstream
	closed bool

	// Durable state: a connection owns at most one durable name (mirroring
	// the broker). The ack floor [durLo, durHi] is the offset range actually
	// forwarded from the current owning node; acks outside it are stale
	// offsets from before a failover and are dropped rather than forwarded,
	// so they cannot fast-forward the new node's cursor.
	durMu   sync.Mutex
	durName string
	durNode string
	durSet  bool // true once a durable delivery has been forwarded
	durLo   uint64
	durHi   uint64

	async     *gateAsync
	asyncOnce sync.Once
}

// gateAsync is the per-subscriber pipelined-publish state: a window
// semaphore bounding in-flight documents, worker goroutines running the
// fan-out, and a single ack writer coalescing outcomes into PUBACKS frames.
type gateAsync struct {
	sem   chan struct{}
	acks  chan server.PubAck
	wg    sync.WaitGroup
	ackWG sync.WaitGroup
}

func newGconn(g *Gate, nc net.Conn) *gconn {
	return &gconn{
		g:    g,
		nc:   nc,
		bw:   bufio.NewWriterSize(nc, 64<<10),
		subs: map[uint64]*gateSub{},
		dss:  map[string]*downstream{},
	}
}

func (cn *gconn) writeFrame(typ byte, payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if err := server.WriteFrame(cn.bw, typ, payload); err != nil {
		return err
	}
	return cn.bw.Flush()
}

// reply writes OK(v) or Err(err).
func (cn *gconn) reply(v uint64, err error) error {
	if err != nil {
		return cn.writeFrame(server.FrameErr, []byte(err.Error()))
	}
	return cn.writeFrame(server.FrameOK, server.AppendUint64(nil, v))
}

func (cn *gconn) maxDocBytes() int {
	if cn.g.cfg.Client.MaxDocBytes > 0 {
		return cn.g.cfg.Client.MaxDocBytes
	}
	return 64 << 20
}

// serve is the subscriber connection's read loop.
func (cn *gconn) serve() {
	defer cn.teardown()
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	for {
		f, err := server.ReadFrame(br, cn.maxDocBytes())
		if err != nil {
			return
		}
		// A set trace-flag bit on a publish frame marks an 8-byte trace-id
		// prefix (same encoding the broker accepts); strip it here so the
		// dispatch below sees the base type and a plain payload.
		typ := f.Type
		var remoteID uint64
		if typ&server.FrameTraceFlag != 0 {
			switch base := typ &^ server.FrameTraceFlag; base {
			case server.FramePublish, server.FramePublishAsync:
				var terr error
				remoteID, f.Payload, terr = server.SplitTracedPayload(f.Payload)
				if terr != nil {
					cn.writeFrame(server.FrameErr, []byte(terr.Error()))
					return
				}
				typ = base
			}
		}
		switch typ {
		case server.FramePing:
			if cn.writeFrame(server.FramePong, nil) != nil {
				return
			}
		case server.FrameSubscribe:
			t0 := time.Now()
			id, err := cn.subscribe(string(f.Payload))
			werr := cn.reply(id, err)
			cn.g.subLat.Observe(time.Since(t0).Seconds())
			if werr != nil {
				return
			}
		case server.FrameSubscribeDurable:
			t0 := time.Now()
			name, query, err := server.ParseSubscribeDurablePayload(f.Payload)
			var id, resume uint64
			if err == nil {
				id, resume, err = cn.subscribeDurable(name, query)
			}
			if err != nil {
				cn.g.subLat.Observe(time.Since(t0).Seconds())
				if cn.writeFrame(server.FrameErr, []byte(err.Error())) != nil {
					return
				}
				continue
			}
			payload := server.AppendUint64(server.AppendUint64(nil, id), resume)
			werr := cn.writeFrame(server.FrameOK, payload)
			cn.g.subLat.Observe(time.Since(t0).Seconds())
			if werr != nil {
				return
			}
		case server.FrameUnsubscribe:
			t0 := time.Now()
			id, err := server.ParseUint64(f.Payload)
			if err == nil {
				err = cn.unsubscribe(id)
			}
			werr := cn.reply(id, err)
			cn.g.unsubLat.Observe(time.Since(t0).Seconds())
			if werr != nil {
				return
			}
		case server.FrameAck:
			off, err := server.ParseUint64(f.Payload)
			if err != nil {
				return
			}
			cn.handleAck(off)
		case server.FramePublish:
			n, err := cn.g.fanPublish(f.Payload, remoteID)
			if cn.reply(uint64(n), err) != nil {
				return
			}
		case server.FramePublishAsync:
			seq, doc, err := server.ParsePublishAsyncPayload(f.Payload)
			if err != nil {
				cn.writeFrame(server.FrameErr, []byte(err.Error()))
				return
			}
			cn.publishAsync(seq, doc, remoteID)
		default:
			// Mirror the broker's protocol hygiene: name the violation in a
			// terminal PROTO_ERR, then close.
			cn.writeFrame(server.FrameProtoErr, []byte(fmt.Sprintf("xpushgate: unknown frame type 0x%02x", f.Type)))
			return
		}
	}
}

// subscribe routes an ephemeral subscription to the ring owner of its
// canonical filter text. Owners whose downstream dial fails are skipped
// (clockwise walk), so a dead-but-not-yet-proven node does not fail the
// subscribe.
func (cn *gconn) subscribe(query string) (uint64, error) {
	canon, err := xpath.Canonicalize(query)
	if err != nil {
		return 0, fmt.Errorf("xpushgate: %w", err)
	}
	cn.opMu.Lock()
	defer cn.opMu.Unlock()
	node, ds, err := cn.placeLocked(canon)
	if err != nil {
		return 0, err
	}
	nodeID, err := ds.c.Subscribe(canon)
	if err != nil {
		return 0, err
	}
	return cn.registerLocked(&gateSub{query: canon, routeKey: canon, node: node, nodeID: nodeID}, ds), nil
}

// subscribeDurable routes a durable subscription by its name, so the
// name's replay cursor stays on one node across the subscriber's
// reconnects (while membership is stable).
func (cn *gconn) subscribeDurable(name, query string) (id, resume uint64, err error) {
	canon, err := xpath.Canonicalize(query)
	if err != nil {
		return 0, 0, fmt.Errorf("xpushgate: %w", err)
	}
	cn.opMu.Lock()
	defer cn.opMu.Unlock()
	cn.durMu.Lock()
	have, haveNode := cn.durName, cn.durNode
	cn.durMu.Unlock()
	if have != "" && have != name {
		// Mirror the broker: one durable name (and replay cursor) per
		// connection, but any number of filters under it.
		return 0, 0, fmt.Errorf("xpushgate: connection already owns durable name %q", have)
	}
	var node string
	var ds *downstream
	if have == name {
		// Additional filter under the claimed name: stay on the name's
		// node so all its deliveries share one offset sequence.
		node = haveNode
		ds, err = cn.downstreamLocked(node)
		if err != nil {
			node, ds = "", nil
		}
	}
	if ds == nil {
		node, ds, err = cn.placeLocked(durableRouteKey(name))
		if err != nil {
			return 0, 0, err
		}
	}
	nodeID, resume, err := ds.c.SubscribeDurable(name, canon)
	if err != nil {
		return 0, 0, err
	}
	gid := cn.registerLocked(&gateSub{query: canon, routeKey: durableRouteKey(name), durable: true, name: name, node: node, nodeID: nodeID}, ds)
	cn.durMu.Lock()
	if cn.durName != name || cn.durNode != node {
		// The name is newly claimed or moved nodes: the delivered-offset
		// window restarts with the new offset sequence.
		cn.durSet = false
	}
	cn.durName, cn.durNode = name, node
	cn.durMu.Unlock()
	return gid, resume, nil
}

// durableRouteKey namespaces durable names away from filter text on the
// ring, so a name that happens to equal a canonical filter does not
// co-locate with it by accident.
func durableRouteKey(name string) string { return "durable\x00" + name }

// placeLocked picks the routing key's owner (skipping proven-down nodes
// and nodes whose downstream dial fails) and returns its downstream.
// Caller holds opMu.
func (cn *gconn) placeLocked(routeKey string) (string, *downstream, error) {
	g := cn.g
	tried := map[string]bool{}
	for {
		node, ok := g.ring.OwnerAvoid(routeKey, func(n string) bool { return tried[n] || g.isDown(n) })
		if !ok {
			return "", nil, fmt.Errorf("xpushgate: no cluster node available")
		}
		ds, err := cn.downstreamLocked(node)
		if err != nil {
			tried[node] = true
			g.pool.Probe(node) // accelerate the pool's verdict on this node
			continue
		}
		return node, ds, nil
	}
}

// downstreamLocked returns (dialing if necessary) this subscriber's
// connection to node. Caller holds opMu.
func (cn *gconn) downstreamLocked(node string) (*downstream, error) {
	cn.mu.Lock()
	ds, ok := cn.dss[node]
	closed := cn.closed
	cn.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("xpushgate: connection closing")
	}
	if ok {
		return ds, nil
	}
	ds = &downstream{node: node, ids: map[uint64]uint64{}}
	opt := cn.g.cfg.Client
	opt.OnDeliver = func(d client.Delivery) { cn.forwardDeliver(ds, d) }
	c, err := client.Dial(node, opt)
	if err != nil {
		return nil, err
	}
	ds.c = c
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("xpushgate: connection closing")
	}
	cn.dss[node] = ds
	cn.mu.Unlock()
	// Watch for the downstream dying out from under us: reroute this
	// subscriber's subscriptions (possibly back onto the same node if only
	// the connection, not the node, failed).
	go func() {
		<-c.Done()
		cn.mu.Lock()
		current := cn.dss[node] == ds
		closed := cn.closed
		cn.mu.Unlock()
		if closed || !current {
			return
		}
		cn.g.logf("cluster: downstream to %s died: %v", node, c.Err())
		cn.g.pool.Probe(node)
		cn.rerouteNode(node, ds)
	}()
	return ds, nil
}

// registerLocked assigns a gate id, installs the sub in both maps and
// bumps the node's live-key count. Caller holds opMu.
func (cn *gconn) registerLocked(sub *gateSub, ds *downstream) uint64 {
	cn.mu.Lock()
	cn.nextID++
	sub.id = cn.nextID
	cn.subs[sub.id] = sub
	cn.mu.Unlock()
	ds.mu.Lock()
	ds.ids[sub.nodeID] = sub.id
	ds.mu.Unlock()
	cn.g.liveKeys[sub.node].Add(1)
	cn.g.mSubs.Add(1)
	return sub.id
}

// unsubscribe removes a gate subscription, forwarding the unsubscribe to
// its node (tolerating a dead downstream — the node-side subscription died
// with the connection).
func (cn *gconn) unsubscribe(id uint64) error {
	cn.opMu.Lock()
	defer cn.opMu.Unlock()
	cn.mu.Lock()
	sub, ok := cn.subs[id]
	if ok {
		delete(cn.subs, id)
	}
	ds := cn.dss[sub0(sub)]
	cn.mu.Unlock()
	if !ok {
		return fmt.Errorf("xpushgate: unknown subscription id %d", id)
	}
	cn.g.liveKeys[sub.node].Add(-1)
	cn.g.mSubs.Add(-1)
	if ds != nil {
		// Keep ds.ids[sub.nodeID] as a tombstone: deliveries already queued
		// node-side still forward, matching direct-broker semantics.
		ds.c.Unsubscribe(sub.nodeID)
	}
	// The durable name stays claimed (and its ack window open) until the
	// connection goes away, mirroring the broker: cursor acks persist even
	// after the name's filters are unsubscribed.
	return nil
}

// sub0 is a nil-safe sub.node (the map lookup above runs before the ok
// check to stay under one lock hold).
func sub0(sub *gateSub) string {
	if sub == nil {
		return ""
	}
	return sub.node
}

// forwardDeliver runs on a downstream connection's read loop: translate
// node ids to gate ids and forward the delivery frame to the subscriber.
// When the delivery carries a trace id with a still-in-flight gate publish
// trace, the downstream merge write becomes a span on it (best effort: a
// delivery arriving after the publish settled records nothing).
func (cn *gconn) forwardDeliver(ds *downstream, d client.Delivery) {
	gids := ds.mapIDs(d.Filters)
	if len(gids) == 0 {
		return
	}
	tc := cn.g.traceRef(d.TraceID)
	sp := tc.StartSpan("merge_write "+ds.node, trace.Root)
	tc.SetTrack(sp, tc.NextTrack())
	tc.SetAttr(sp, "filters", int64(len(gids)))
	var payload []byte
	typ := server.FrameDeliver
	if d.Durable {
		cn.noteDurableDelivery(ds.node, d.Offset)
		typ = server.FrameDeliverAt
		payload = server.AppendDeliverAtPayloadTrace(nil, d.Offset, gids, d.Doc, d.TraceID)
	} else {
		payload = server.AppendDeliverPayloadTrace(nil, gids, d.Doc, d.TraceID)
	}
	if cn.writeFrame(typ, payload) == nil {
		cn.g.mDeliveriesFwd.Inc()
	}
	tc.EndSpan(sp)
	tc.Finish()
}

// noteDurableDelivery widens the ack floor window with an offset actually
// forwarded from the current durable node.
func (cn *gconn) noteDurableDelivery(node string, off uint64) {
	cn.durMu.Lock()
	defer cn.durMu.Unlock()
	if node != cn.durNode {
		return // late delivery from a node we failed away from
	}
	if !cn.durSet {
		cn.durSet, cn.durLo, cn.durHi = true, off, off
		return
	}
	if off < cn.durLo {
		cn.durLo = off
	}
	if off > cn.durHi {
		cn.durHi = off
	}
}

// handleAck forwards a durable ack to the owning node iff its offset is
// inside the window forwarded from that node; stale offsets (from before a
// failover, in the old node's offset space) are dropped so they cannot
// fast-forward the new node's cursor.
func (cn *gconn) handleAck(off uint64) {
	cn.durMu.Lock()
	node := cn.durNode
	ok := cn.durSet && off >= cn.durLo && off <= cn.durHi
	cn.durMu.Unlock()
	if !ok || node == "" {
		cn.g.mAcksDropped.Inc()
		return
	}
	cn.mu.Lock()
	ds := cn.dss[node]
	cn.mu.Unlock()
	if ds == nil {
		cn.g.mAcksDropped.Inc()
		return
	}
	if ds.c.Ack(off) == nil {
		cn.g.mAcksFwd.Inc()
	}
}

// rerouteNode replays this subscriber's subscriptions on node onto the
// ring's next owners (the normal subscribe path on the surviving node, so
// the COW engine swap warms the filters in). When expect is non-nil the
// reroute only applies if that exact downstream is still current — a stale
// watcher must not tear down a healthy replacement connection.
func (cn *gconn) rerouteNode(node string, expect *downstream) {
	cn.opMu.Lock()
	defer cn.opMu.Unlock()
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return
	}
	ds := cn.dss[node]
	if expect != nil && ds != expect {
		cn.mu.Unlock()
		return
	}
	delete(cn.dss, node)
	var moving []*gateSub
	for _, sub := range cn.subs {
		if sub.node == node {
			moving = append(moving, sub)
		}
	}
	cn.mu.Unlock()
	if ds != nil {
		ds.c.Close()
	}
	if len(moving) == 0 {
		return
	}
	for _, sub := range moving {
		cn.g.liveKeys[node].Add(-1)
		newNode, newDS, err := cn.placeLocked(sub.routeKey)
		if err != nil {
			cn.g.logf("cluster: replacing subscription %d after %s died: %v", sub.id, node, err)
			cn.dropSubLocked(sub)
			continue
		}
		var nodeID uint64
		if sub.durable {
			nodeID, _, err = newDS.c.SubscribeDurable(sub.name, sub.query)
		} else {
			nodeID, err = newDS.c.Subscribe(sub.query)
		}
		if err != nil {
			cn.dropSubLocked(sub)
			continue
		}
		cn.mu.Lock()
		sub.node, sub.nodeID = newNode, nodeID
		cn.mu.Unlock()
		newDS.mu.Lock()
		newDS.ids[nodeID] = sub.id
		newDS.mu.Unlock()
		cn.g.liveKeys[newNode].Add(1)
		if sub.durable {
			// The new node replays from its own cursor; reset the ack floor
			// so stale old-node offsets are dropped until the new node's
			// deliveries establish a fresh window.
			cn.durMu.Lock()
			if cn.durName == sub.name {
				cn.durNode, cn.durSet = newNode, false
			}
			cn.durMu.Unlock()
		}
		cn.g.mFailoverResubs.Inc()
	}
}

// dropSubLocked abandons a subscription that could not be replayed onto
// any surviving node. Caller holds opMu; the node's live-key count has
// already been decremented.
func (cn *gconn) dropSubLocked(sub *gateSub) {
	cn.mu.Lock()
	delete(cn.subs, sub.id)
	cn.mu.Unlock()
	cn.g.mSubs.Add(-1)
	cn.g.mFailoverDrops.Inc()
	cn.g.logf("cluster: dropped subscription %d (%s): no surviving node", sub.id, sub.query)
}

// ensureAsync lazily creates the pipelined-publish state and its ack writer.
func (cn *gconn) ensureAsync() *gateAsync {
	cn.asyncOnce.Do(func() {
		w := cn.g.cfg.publishWindow()
		a := &gateAsync{sem: make(chan struct{}, w), acks: make(chan server.PubAck, w)}
		cn.async = a
		a.ackWG.Add(1)
		go cn.ackLoop(a)
	})
	return cn.async
}

// publishAsync runs on the serve loop: acquire a window slot and hand the
// fan-out to a worker so the loop keeps parsing frames.
func (cn *gconn) publishAsync(seq uint64, doc []byte, remoteID uint64) {
	a := cn.ensureAsync()
	a.sem <- struct{}{}
	d := append([]byte(nil), doc...) // frame buffer is reused by the reader
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		defer func() { <-a.sem }()
		n, err := cn.g.fanPublish(d, remoteID)
		ack := server.PubAck{Seq: seq, Matches: uint64(n)}
		if err != nil {
			ack.Err = err.Error()
		}
		a.acks <- ack
	}()
}

// maxGatePubAckBatch bounds outcomes per PUBACKS frame (mirrors the broker).
const maxGatePubAckBatch = 512

// ackLoop coalesces publish outcomes into PUBACKS frames, one writer per
// connection. On a write error it keeps draining so workers never block.
func (cn *gconn) ackLoop(a *gateAsync) {
	defer a.ackWG.Done()
	var batch []server.PubAck
	var buf []byte
	dead := false
	for ack := range a.acks {
		batch = append(batch[:0], ack)
	fill:
		for len(batch) < maxGatePubAckBatch {
			select {
			case more, ok := <-a.acks:
				if !ok {
					break fill
				}
				batch = append(batch, more)
			default:
				break fill
			}
		}
		if dead {
			continue
		}
		buf = server.AppendPubAcksPayload(buf[:0], batch)
		if cn.writeFrame(server.FramePubAcks, buf) != nil {
			dead = true
			cn.nc.Close()
		}
	}
}

// shutdown force-closes the subscriber socket; the serve loop's teardown
// does the rest.
func (cn *gconn) shutdown() { cn.nc.Close() }

// teardown runs when the serve loop exits: close the subscriber socket and
// every downstream (node-side teardown unsubscribes server-side), release
// live-key counts, and stop the async machinery. It takes opMu so an
// in-flight reroute finishes its accounting before the final snapshot —
// otherwise both paths would decrement the same subscription's live-key.
func (cn *gconn) teardown() {
	cn.nc.Close() // unblock any in-flight write before waiting on opMu
	cn.opMu.Lock()
	defer cn.opMu.Unlock()
	cn.mu.Lock()
	cn.closed = true
	dss := make([]*downstream, 0, len(cn.dss))
	for _, ds := range cn.dss {
		dss = append(dss, ds)
	}
	cn.dss = map[string]*downstream{}
	subs := cn.subs
	cn.subs = map[uint64]*gateSub{}
	cn.mu.Unlock()
	cn.nc.Close()
	for _, ds := range dss {
		ds.c.Close()
	}
	for _, sub := range subs {
		cn.g.liveKeys[sub.node].Add(-1)
		cn.g.mSubs.Add(-1)
	}
	if cn.async != nil {
		cn.async.wg.Wait()
		close(cn.async.acks)
		cn.async.ackWG.Wait()
	}
}
