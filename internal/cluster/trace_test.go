package cluster

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/xpath"
	"repro/server"
)

// chromeEvent is one Chrome trace_event entry of the merged export.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	Pid  uint64         `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestGateCrossHopTraceMerge is the acceptance e2e for cross-hop tracing:
// one publish through a 2-node gated cluster with sampling 1/1 yields one
// merged Chrome trace containing the gate's ingress root, a fan-out span
// per node, the ack-aggregation wait, and both nodes' own filter and
// deliver spans under the same trace id.
func TestGateCrossHopTraceMerge(t *testing.T) {
	n1 := startNode(t, server.Config{DebugAddr: "127.0.0.1:0", TraceSample: 1})
	n2 := startNode(t, server.Config{DebugAddr: "127.0.0.1:0", TraceSample: 1})
	nodes := []string{n1.Addr(), n2.Addr()}
	g := startGate(t, nodes, func(c *Config) {
		c.MetricsAddr = "127.0.0.1:0"
		c.TraceSample = 1
		c.NodeDebug = []string{n1.DebugAddr(), n2.DebugAddr()}
	})
	waitUntil(t, "nodes connected", func() bool {
		return g.pool.Up(n1.Addr()) && g.pool.Up(n2.Addr())
	})

	// Pick one filter owned by each node so a single matching publish fans
	// out to both.
	byNode := map[string]string{}
	for _, f := range []string{"//a", "//b", "//c", "//d", "//e", "//f", "//g", "//h"} {
		canon, err := xpath.Canonicalize(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := byNode[g.ring.Owner(canon)]; !ok {
			byNode[g.ring.Owner(canon)] = f
		}
	}
	if len(byNode) != 2 {
		t.Fatalf("could not find filters for both nodes: %v", byNode)
	}

	var got atomic.Int64
	c, err := client.Dial(g.Addr(), client.Options{
		Timeout:   5 * time.Second,
		OnDeliver: func(client.Delivery) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, f := range byNode {
		if _, err := c.Subscribe(f); err != nil {
			t.Fatal(err)
		}
	}
	doc := []byte(`<r><a/><b/><c/><d/><e/><f/><g/><h/></r>`)
	n, err := c.Publish(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("publish matched %d, want 2 (one per node)", n)
	}
	waitUntil(t, "deliveries", func() bool { return got.Load() == 2 })

	// The node traces finish asynchronously with the last DELIVER write;
	// poll the merged export until both hops are present.
	var events []chromeEvent
	waitUntil(t, "merged trace", func() bool {
		body := httpGet(t, "http://"+g.MetricsAddr()+"/debug/cluster/traces")
		if err := json.Unmarshal([]byte(body), &events); err != nil {
			t.Fatalf("merged trace is not valid JSON: %v\n%s", err, body)
		}
		return strings.Contains(body, "deliver_write") &&
			strings.Contains(body, "gate_publish")
	})

	// The gate ingress root pins the merged trace's pid.
	var pid uint64
	for _, ev := range events {
		if ev.Name == "gate_publish" && ev.Cat == "root" {
			pid = ev.Pid
		}
	}
	if pid == 0 {
		t.Fatalf("no gate_publish root in merged trace: %+v", events)
	}
	want := map[string]int{
		"fanout " + nodes[0]: 0,
		"fanout " + nodes[1]: 0,
		"ack_wait":           0,
		"filter":             0,
		"deliver_write":      0,
	}
	threads := map[string]bool{}
	for _, ev := range events {
		if ev.Ph == "X" && ev.Pid == pid {
			if _, ok := want[ev.Name]; ok {
				want[ev.Name]++
			}
		}
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Pid == pid {
			if n, ok := ev.Args["name"].(string); ok {
				threads[n] = true
			}
		}
	}
	for name, count := range want {
		if count == 0 {
			t.Errorf("merged trace %d missing span %q", pid, name)
		}
	}
	// Both node hops must contribute their filter span (one per node).
	if want["filter"] != 2 {
		t.Errorf("merged trace has %d filter spans, want one per node", want["filter"])
	}
	for _, node := range nodes {
		found := false
		for th := range threads {
			if strings.Contains(th, node) {
				found = true
			}
		}
		if !found {
			t.Errorf("no thread row for node %s (threads: %v)", node, threads)
		}
	}
	if t.Failed() {
		t.Fatalf("events: %+v", events)
	}
}

// TestGatePropagatesPublisherTraceID: a publisher that traced the document
// upstream wins over gate sampling — the gate hop adopts the carried id.
func TestGatePropagatesPublisherTraceID(t *testing.T) {
	n1 := startNode(t, server.Config{DebugAddr: "127.0.0.1:0", TraceSample: 1})
	g := startGate(t, []string{n1.Addr()}, func(c *Config) {
		c.MetricsAddr = "127.0.0.1:0"
		c.TraceSample = 1
	})
	waitUntil(t, "node connected", func() bool { return g.pool.Up(n1.Addr()) })

	c, err := client.Dial(g.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe("//a"); err != nil {
		t.Fatal(err)
	}
	const carried = uint64(0xabcdef01)
	if _, err := c.PublishTraced([]byte(`<a/>`), carried); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "gate trace under the carried id", func() bool {
		for _, tr := range g.tracer.Traces() {
			if tr.ID == carried && tr.Remote {
				return true
			}
		}
		return false
	})
	// The node behind the gate adopted the same id in turn.
	waitUntil(t, "node trace under the carried id", func() bool {
		for _, tr := range n1.Tracer().Traces() {
			if tr.ID == carried && tr.Remote {
				return true
			}
		}
		return false
	})
}
