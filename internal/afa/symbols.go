package afa

// Symbols interns element and attribute labels to dense int32 ids so state
// sets and transition tables work on integers. Attribute labels use the "@"
// prefix convention of the sax package.
//
// The lookup index is a flat open-addressing table probed by an FNV-1a hash
// of the label bytes, with byte-slice and string entry points that hash
// identically. The byte entry points let the scanner resolve names straight
// from the input buffer without materialising a string per event.

// Reserved symbol ids.
const (
	// SymAnyElem is the * wildcard (any element label).
	SymAnyElem int32 = 0
	// SymAnyAttr is the @* wildcard (any attribute label).
	SymAnyAttr int32 = 1
	// SymOtherElem stands for every element label that occurs in no
	// query. All such labels behave identically (only wildcard
	// transitions can fire on them), so mapping them to one symbol lets
	// the lazy transition tables share their entries.
	SymOtherElem int32 = 2
	// SymOtherAttr is the attribute counterpart of SymOtherElem.
	SymOtherAttr int32 = 3
)

// Symbols is an interning table for labels.
type Symbols struct {
	slots  []int32 // open-addressing index into names; -1 marks empty
	names  []string
	isAttr []bool
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashLabelBytes(label []byte) uint64 {
	h := fnvOffset64
	for _, c := range label {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

func hashLabelString(label string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime64
	}
	return h
}

// NewSymbols returns a table with the wildcards and unknown-label sentinels
// pre-interned.
func NewSymbols() *Symbols {
	s := &Symbols{slots: newSlots(16)}
	for i, n := range []string{"*", "@*", "⟨elem⟩", "⟨attr⟩"} {
		s.names = append(s.names, n)
		s.isAttr = append(s.isAttr, i == 1 || i == 3)
		s.insert(hashLabelString(n), int32(i))
	}
	return s
}

func newSlots(n int) []int32 {
	slots := make([]int32, n)
	for i := range slots {
		slots[i] = -1
	}
	return slots
}

// insert places an id in the slot index; the caller guarantees the label is
// not already present and that there is room.
func (s *Symbols) insert(h uint64, id int32) {
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if s.slots[i] < 0 {
			s.slots[i] = id
			return
		}
	}
}

func (s *Symbols) grow() {
	s.slots = newSlots(len(s.slots) * 2)
	for id, name := range s.names {
		s.insert(hashLabelString(name), int32(id))
	}
}

// lookupString probes for a label; returns (id, true) when present.
func (s *Symbols) lookupString(label string) (int32, bool) {
	mask := uint64(len(s.slots) - 1)
	for i := hashLabelString(label) & mask; ; i = (i + 1) & mask {
		id := s.slots[i]
		if id < 0 {
			return 0, false
		}
		if s.names[id] == label {
			return id, true
		}
	}
}

// lookupBytes is lookupString for a borrowed byte slice; the string(label)
// conversion in the comparison does not allocate.
func (s *Symbols) lookupBytes(label []byte) (int32, bool) {
	mask := uint64(len(s.slots) - 1)
	for i := hashLabelBytes(label) & mask; ; i = (i + 1) & mask {
		id := s.slots[i]
		if id < 0 {
			return 0, false
		}
		if s.names[id] == string(label) {
			return id, true
		}
	}
}

// InputSym maps a SAX event label to the symbol the machine should use:
// known labels map to their interned id; unknown labels collapse to the
// shared sentinel for their node class.
func (s *Symbols) InputSym(label string) int32 {
	if id, ok := s.lookupString(label); ok {
		return id
	}
	if len(label) > 0 && label[0] == '@' {
		return SymOtherAttr
	}
	return SymOtherElem
}

// InputSymBytes is InputSym for a borrowed byte slice; it never allocates.
func (s *Symbols) InputSymBytes(label []byte) int32 {
	if id, ok := s.lookupBytes(label); ok {
		return id
	}
	if len(label) > 0 && label[0] == '@' {
		return SymOtherAttr
	}
	return SymOtherElem
}

// Intern returns the id for a label, creating it if new. Labels beginning
// with '@' are attribute labels.
func (s *Symbols) Intern(label string) int32 {
	if id, ok := s.lookupString(label); ok {
		return id
	}
	if (len(s.names)+1)*4 > len(s.slots)*3 {
		s.grow()
	}
	id := int32(len(s.names))
	s.names = append(s.names, label)
	s.isAttr = append(s.isAttr, len(label) > 0 && label[0] == '@')
	s.insert(hashLabelString(label), id)
	return id
}

// Lookup returns the id for a label without creating it; ok is false for
// unknown labels.
func (s *Symbols) Lookup(label string) (int32, bool) {
	return s.lookupString(label)
}

// Name returns the label for an id.
func (s *Symbols) Name(id int32) string { return s.names[id] }

// IsAttr reports whether the id denotes an attribute label (or @*).
func (s *Symbols) IsAttr(id int32) bool { return s.isAttr[id] }

// Len returns the number of interned symbols, wildcards included.
func (s *Symbols) Len() int { return len(s.names) }

// Matches reports whether a transition labeled sym fires on an input label
// in (a concrete element or attribute symbol): exact match, or the
// appropriate wildcard.
func (s *Symbols) Matches(sym, in int32) bool {
	if sym == in {
		return true
	}
	if sym == SymAnyElem {
		return !s.isAttr[in]
	}
	if sym == SymAnyAttr {
		return s.isAttr[in]
	}
	return false
}
