package theory

import (
	"math/rand"
	"testing"

	"repro/internal/afa"
	"repro/internal/core"
)

func machineStates(t *testing.T, n, k int, sigma float64, nDocs int, order bool) int {
	t.Helper()
	fs := FlatWorkload(n, k)
	a, err := afa.Compile(fs)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{}
	if order {
		opts.Order = FlatDTD(k).SiblingOrder()
	}
	m := core.New(a, opts)
	docs := FlatDocuments(rand.New(rand.NewSource(77)), nDocs, n, k, sigma)
	if err := m.Run(docs); err != nil {
		t.Fatal(err)
	}
	return m.Stats().BStates
}

func TestFormulasBehave(t *testing.T) {
	// Monotone in σ and N.
	if ExpectedStatesNoOrder(100, 50, 0.01) >= ExpectedStatesNoOrder(100, 50, 0.1) {
		t.Error("no-order bound must grow with σ")
	}
	if ExpectedStatesOrder(100, 10, 3, 0.01) >= ExpectedStatesOrder(100, 10, 3, 0.1) {
		t.Error("order bound must grow with σ")
	}
	// Theorem 6.2's third consequence: with kn (total branches) constant,
	// increasing k decreases the expected number of states.
	kn := 24
	prev := ExpectedStatesOrder(100, kn/1, 1, 0.05)
	for _, k := range []int{2, 3, 4, 6} {
		cur := ExpectedStatesOrder(100, kn/k, k, 0.05)
		if cur >= prev {
			t.Errorf("k=%d: expected states %.1f not below k-smaller %.1f", k, cur, prev)
		}
		prev = cur
	}
	if ExpectedStatesOrder(100, 5, 3, 0) != 100 {
		t.Error("σ=0: one state per doc bound")
	}
}

func TestTheorem62NoOrderBoundHolds(t *testing.T) {
	// σ small (σ << 1/N regime): measured lazily created states should be
	// the right order of magnitude versus the 1+Nmσ bound. The bound is
	// an expectation; allow slack for Monte Carlo noise and for the
	// intermediate accumulation states the machine also interns.
	n, k := 40, 3
	sigma := 0.002
	nDocs := 200
	m := n * k // distinct atomic predicates
	states := machineStates(t, n, k, sigma, nDocs, false)
	bound := ExpectedStatesNoOrder(nDocs, m, sigma)
	// The machine also interns a handful of workload-independent states
	// (value intervals, per-document skeleton states).
	if float64(states) > 8*bound+40 {
		t.Errorf("states %d far above bound %.1f", states, bound)
	}
}

func TestOrderReducesStatesOnFlatWorkload(t *testing.T) {
	n, k := 12, 4
	sigma := 0.02
	nDocs := 300
	plain := machineStates(t, n, k, sigma, nDocs, false)
	ordered := machineStates(t, n, k, sigma, nDocs, true)
	if ordered > plain {
		t.Errorf("order opt increased states: %d > %d", ordered, plain)
	}
}

func TestMoreBranchesPerQueryFewerStates(t *testing.T) {
	// The empirical counterpart of the theorem's consequence (Fig. 10a):
	// keep total branches kn fixed, increase k, expect fewer states with
	// order optimization.
	sigma := 0.01
	nDocs := 300
	kn := 24
	s1 := machineStates(t, kn/2, 2, sigma, nDocs, true)
	s2 := machineStates(t, kn/6, 6, sigma, nDocs, true)
	if s2 > s1 {
		t.Errorf("k=6 states %d should not exceed k=2 states %d", s2, s1)
	}
}

func TestFlatWorkloadShape(t *testing.T) {
	fs := FlatWorkload(3, 2)
	if len(fs) != 3 {
		t.Fatalf("n = %d", len(fs))
	}
	if fs[1].String() != "/a[b0/text()=1 and b1/text()=1]" {
		t.Errorf("query = %s", fs[1])
	}
	if fs[0].CountAtomicPredicates() != 2 {
		t.Errorf("preds = %d", fs[0].CountAtomicPredicates())
	}
}

func TestFlatDTDOrder(t *testing.T) {
	o := FlatDTD(3).SiblingOrder()
	if !o.Precedes("b0", "b2") || o.Precedes("b2", "b0") {
		t.Error("flat DTD order wrong")
	}
}
