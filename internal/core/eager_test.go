package core

import (
	"fmt"
	"sort"
	"testing"
)

// TestEagerFig3Exactly22States: Example 3.2 states that the running
// example's bottom-up XPush machine has exactly 22 bottom-up states
// (q0..q21). The eager closure must reproduce that family precisely
// (translated to our AFA numbering: paper state k maps as documented in
// machine_test.go).
func TestEagerFig3Exactly22States(t *testing.T) {
	m := runningMachine(t, Options{})
	n, err := m.PrecomputeEager(10000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 22 {
		t.Fatalf("eager states = %d, want the paper's 22", n)
	}
	// The exact state family of Fig. 3/4, paper numbering translated via
	// 1→0, 2→6, 3→2, 4→1, 5→3, 6→5, 7→4, 8→7, 9→12, 10→9, 11→8, 12→11,
	// 13→10 and sorted.
	want := []string{
		"[]",               // q0
		"[1 10]",           // q1  {4,13}
		"[4 8]",            // q2  {7,11}
		"[2 11]",           // q3  {3,12}
		"[5 9]",            // q4  {6,10}
		"[2 5 9 11]",       // q5  {3,6,10,12}
		"[3]",              // q6  {5}
		"[3 7]",            // q7  {5,8}
		"[2 3 11]",         // q8  {3,5,12}
		"[2 3 7 11]",       // q9  {3,5,8,12}
		"[3 5 9]",          // q10 {5,6,10}
		"[3 5 7 9]",        // q11 {5,6,8,10}
		"[2 3 5 9 11]",     // q12 {3,5,6,10,12}
		"[2 3 5 7 9 11]",   // q13 {3,5,6,8,10,12}
		"[0 3]",            // q14 {1,5}
		"[0 3 7]",          // q15 {1,5,8}
		"[0 2 3 11]",       // q16 {1,3,5,12}
		"[0 2 3 7 11]",     // q17 {1,3,5,8,12}
		"[0 3 5 9]",        // q18 {1,5,6,10}
		"[0 3 5 7 9]",      // q19 {1,5,6,8,10}
		"[0 2 3 5 9 11]",   // q20 {1,3,5,6,10,12}
		"[0 2 3 5 7 9 11]", // q21 {1,3,5,6,8,10,12}
	}
	var got []string
	for i := 0; i < n; i++ {
		got = append(got, fmt.Sprint(m.BStateSet(int32(i))))
	}
	sort.Strings(want)
	sort.Strings(got)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("state family differs from Fig. 3:\n got  %v\n want %v", got, want)
		}
	}
}

// TestEagerMachineRunsWithoutMisses: after eager construction the Fig. 3
// document runs entirely on cache hits (the "completed" machine of Sec. 7).
func TestEagerMachineRunsWithoutMisses(t *testing.T) {
	m := runningMachine(t, Options{})
	if _, err := m.PrecomputeEager(10000); err != nil {
		t.Fatal(err)
	}
	states := m.Stats().BStates
	l0, h0 := m.Stats().Lookups, m.Stats().Hits
	got, err := m.FilterDocument([]byte(`<a><b>1</b><a c="3"><b>1</b></a></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Fatalf("matches = %v", got)
	}
	st := m.Stats()
	if st.BStates != states {
		t.Errorf("eager machine created states at runtime: %d -> %d", states, st.BStates)
	}
	if st.Hits-h0 != st.Lookups-l0 {
		t.Errorf("eager machine missed: %d/%d", st.Hits-h0, st.Lookups-l0)
	}
}

func TestEagerRequiresBasicMachine(t *testing.T) {
	m := runningMachine(t, Options{TopDown: true})
	if _, err := m.PrecomputeEager(100); err == nil {
		t.Error("eager construction must reject top-down machines")
	}
}

// TestLazyAvoidsEagerBlowup reproduces the Sec. 4 argument for laziness:
// n phone-equality filters need ~2^n eager states, but if every person in
// the data has one phone (or occasionally two), the lazy machine builds
// only slightly more than n.
func TestLazyAvoidsEagerBlowup(t *testing.T) {
	const n = 12
	queries := make([]string, n)
	for i := range queries {
		queries[i] = fmt.Sprintf("/person[phone=%d]", i)
	}
	m := New(compileWorkload(t, queries...), Options{})
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf("<person><phone>%d</phone></person>", i)
		if got, err := m.FilterDocument([]byte(doc)); err != nil || len(got) != 1 {
			t.Fatalf("doc %d: %v %v", i, got, err)
		}
	}
	// Occasionally two phones.
	if _, err := m.FilterDocument([]byte("<person><phone>3</phone><phone>7</phone></person>")); err != nil {
		t.Fatal(err)
	}
	states := m.Stats().BStates
	// Paper: "at most n+1 states" with single phones, "n(n-1)/2" with
	// pairs; allow the value/interval states on top.
	if states > 4*n {
		t.Errorf("lazy machine built %d states for n=%d (expected O(n))", states, n)
	}
}

func TestEagerMaxStatesBound(t *testing.T) {
	queries := make([]string, 12)
	for i := range queries {
		queries[i] = fmt.Sprintf("/person[phone=%d]", i)
	}
	m := New(compileWorkload(t, queries...), Options{})
	// 12 independent phone predicates: the eager machine needs 2^12
	// subsets (the paper's person/phone example, Sec. 4); a small cap
	// must trip.
	if _, err := m.PrecomputeEager(500); err == nil {
		t.Error("expected the exponential workload to exceed the cap")
	}
}
