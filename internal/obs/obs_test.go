package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(-2)
	if g.Value() != -2 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)          // bucket 0
	h.Observe(1e-6)       // bucket 0 (v <= base)
	h.Observe(3e-6)       // bucket 2 (<= 4µs)
	h.Observe(1)          // <= 2^20µs ≈ 1.05s
	h.Observe(1e9)        // overflow
	h.Observe(-1)         // clamped to 0
	h.Observe(math.NaN()) // clamped to 0
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 4 {
		t.Errorf("bucket 0 = %d", s.Buckets[0])
	}
	if s.Buckets[2] != 1 {
		t.Errorf("bucket 2 = %d", s.Buckets[2])
	}
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Errorf("overflow = %d", s.Buckets[len(s.Buckets)-1])
	}
	if s.Max != 1e9 {
		t.Errorf("max = %v", s.Max)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Errorf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations spread evenly over [1ms, 100ms].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	s := h.Snapshot()
	sum := s.Summary()
	if sum.Count != 100 {
		t.Fatalf("count = %d", sum.Count)
	}
	// Log buckets are coarse; accept a factor-of-2 window around truth.
	checks := []struct {
		name      string
		got, want float64
	}{
		{"p50", sum.P50, 0.050},
		{"p90", sum.P90, 0.090},
		{"p99", sum.P99, 0.099},
	}
	for _, c := range checks {
		if c.got < c.want/2 || c.got > c.want*2 {
			t.Errorf("%s = %v, want within 2x of %v", c.name, c.got, c.want)
		}
	}
	if sum.Max != 0.1 {
		t.Errorf("max = %v", sum.Max)
	}
	if math.Abs(sum.Mean-0.0505) > 1e-9 {
		t.Errorf("mean = %v", sum.Mean)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1e-3)
	b.Observe(2e-3)
	b.Observe(5)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 5 {
		t.Errorf("max = %v", s.Max)
	}
	if math.Abs(s.Sum-5.003) > 1e-9 {
		t.Errorf("sum = %v", s.Sum)
	}
	// Merge into an empty snapshot works too.
	var empty Snapshot
	empty.Merge(s)
	if empty.Count != 3 {
		t.Errorf("merged-into-empty count = %d", empty.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%17) * 1e-4)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent snapshot reads must be race-free
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot().Summary()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("docs_total", "documents processed")
	c.Add(7)
	g := r.Gauge("hit_ratio", "table hit ratio")
	g.Set(0.9375)
	r.GaugeFunc("states", "machine states", func() float64 { return 42 })
	r.CounterFunc("bytes_total", "bytes in", func() int64 { return 1 << 20 })
	var h Histogram
	h.Observe(0.002)
	h.Observe(0.004)
	r.Histogram("latency_seconds", "per-document latency", &h)
	r.SummaryFunc("latency_quantiles_seconds", "latency quantiles", nil, h.Snapshot)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE docs_total counter",
		"docs_total 7",
		"# TYPE hit_ratio gauge",
		"hit_ratio 0.9375",
		"states 42",
		"bytes_total 1048576",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="+Inf"} 2`,
		"latency_seconds_count 2",
		"# TYPE latency_quantiles_seconds summary",
		`latency_quantiles_seconds{quantile="0.5"}`,
		`latency_quantiles_seconds{quantile="0.99"}`,
		"latency_quantiles_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at count.
	if !strings.Contains(out, "latency_seconds_sum 0.006") {
		t.Errorf("bad sum:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name must panic")
		}
	}()
	r.Counter("x", "")
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_docs", "").Add(3)
	srv := httptest.NewServer(r.NewMux())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "up_docs 3") {
		t.Errorf("metrics body: %s", buf[:n])
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type: %s", ct)
	}

	hresp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	n, _ = hresp.Body.Read(buf)
	if strings.TrimSpace(string(buf[:n])) != "ok" {
		t.Errorf("healthz body: %q", buf[:n])
	}
}

func TestHTTPReadiness(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_docs", "").Add(3)
	ready := true
	srv := httptest.NewServer(r.NewMuxWithReadiness(func() bool { return ready }))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("ready healthz: %d %q", code, body)
	}
	ready = false
	if code, body := get("/healthz"); code != 503 || strings.TrimSpace(body) != "draining" {
		t.Errorf("draining healthz: %d %q", code, body)
	}
	// /metrics stays scrapeable while draining (the final flush).
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_docs 3") {
		t.Errorf("draining metrics: %d %q", code, body)
	}
}
