// Package xpath implements the XPath fragment of the paper (Fig. 1):
//
//	P ::= /E | //E
//	E ::= label | text() | * | @* | . | E/E | E//E | E[Q]
//	Q ::= E | E Oprel Const | Q and Q | Q or Q | not(Q)
//	Oprel ::= < | <= | > | >= | = | !=
//
// Attribute tests @label are supported in addition to @* (the paper's running
// example uses @c), and parenthesised predicates are accepted. As an
// extension, the string predicates contains(E, "s") and starts-with(E, "s")
// sketched in Sec. 2 are supported.
//
// An expression is a boolean filter: it matches a document iff it selects at
// least one node from the root.
package xpath

import (
	"strings"

	"repro/internal/xmlval"
)

// Axis is the navigation axis of a step.
type Axis uint8

const (
	// Child is the / axis.
	Child Axis = iota
	// Descendant is the // axis (descendant-or-self abbreviation).
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// TestKind classifies a step's node test.
type TestKind uint8

const (
	// Element matches an element with a specific label.
	Element TestKind = iota
	// Attribute matches an attribute with a specific name (@name).
	Attribute
	// AnyElement is the * wildcard.
	AnyElement
	// AnyAttribute is the @* wildcard.
	AnyAttribute
	// Text is the text() node test.
	Text
	// Self is the . abbreviation (self node).
	Self
)

// NodeTest is the node test of a step.
type NodeTest struct {
	Kind TestKind
	Name string // set for Element and Attribute
}

func (t NodeTest) String() string {
	switch t.Kind {
	case Element:
		return t.Name
	case Attribute:
		return "@" + t.Name
	case AnyElement:
		return "*"
	case AnyAttribute:
		return "@*"
	case Text:
		return "text()"
	case Self:
		return "."
	default:
		return "?"
	}
}

// IsAttribute reports whether the test selects attribute nodes.
func (t NodeTest) IsAttribute() bool {
	return t.Kind == Attribute || t.Kind == AnyAttribute
}

// Step is one navigation step with optional predicates, the E[Q] form.
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

// Path is a sequence of steps. Filters are absolute paths (the leading / or
// // of P ::= /E | //E is the Axis of the first step); paths inside
// predicates are relative to the step they qualify.
type Path struct {
	Steps []Step
}

// Filter is a parsed top-level XPath boolean filter.
type Filter struct {
	Path *Path
	// Source is the original text the filter was parsed from, when known.
	Source string
}

// Expr is a predicate expression (the Q production).
type Expr interface {
	exprNode()
	writeTo(sb *strings.Builder)
}

// And is the conjunction Q and Q.
type And struct{ L, R Expr }

// Or is the disjunction Q or Q.
type Or struct{ L, R Expr }

// Not is the negation not(Q). Note not introduces universal quantification:
// /a[not(b/text()=1)] matches iff all b children have text != 1.
type Not struct{ X Expr }

// Exists is the Q ::= E form: the relative path selects at least one node.
type Exists struct{ Path *Path }

// Cmp is the atomic comparison Q ::= E Oprel Const (plus the contains /
// starts-with extension ops).
type Cmp struct {
	Path  *Path
	Op    xmlval.Op
	Const xmlval.Const
}

func (*And) exprNode()    {}
func (*Or) exprNode()     {}
func (*Not) exprNode()    {}
func (*Exists) exprNode() {}
func (*Cmp) exprNode()    {}

// String renders the filter in canonical form; the result re-parses to an
// equivalent AST.
func (f *Filter) String() string {
	var sb strings.Builder
	writePath(&sb, f.Path, true)
	return sb.String()
}

func (p *Path) String() string {
	var sb strings.Builder
	writePath(&sb, p, false)
	return sb.String()
}

func writePath(sb *strings.Builder, p *Path, absolute bool) {
	for i, s := range p.Steps {
		if i == 0 && !absolute {
			// Relative path: render leading descendant axis as .//,
			// leading child axis bare.
			if s.Axis == Descendant {
				sb.WriteString(".//")
			}
		} else {
			sb.WriteString(s.Axis.String())
		}
		sb.WriteString(s.Test.String())
		for _, q := range s.Preds {
			sb.WriteByte('[')
			q.writeTo(sb)
			sb.WriteByte(']')
		}
	}
}

func (e *And) writeTo(sb *strings.Builder) {
	writeOperand(sb, e.L, true)
	sb.WriteString(" and ")
	writeOperand(sb, e.R, true)
}

func (e *Or) writeTo(sb *strings.Builder) {
	writeOperand(sb, e.L, false)
	sb.WriteString(" or ")
	writeOperand(sb, e.R, false)
}

// writeOperand parenthesises a child expression when needed to preserve
// precedence (or < and < not).
func writeOperand(sb *strings.Builder, e Expr, inAnd bool) {
	if _, isOr := e.(*Or); isOr && inAnd {
		sb.WriteByte('(')
		e.writeTo(sb)
		sb.WriteByte(')')
		return
	}
	e.writeTo(sb)
}

func (e *Not) writeTo(sb *strings.Builder) {
	sb.WriteString("not(")
	e.X.writeTo(sb)
	sb.WriteByte(')')
}

func (e *Exists) writeTo(sb *strings.Builder) {
	writePath(sb, e.Path, false)
}

func (e *Cmp) writeTo(sb *strings.Builder) {
	switch e.Op {
	case xmlval.OpContains:
		sb.WriteString("contains(")
		writePath(sb, e.Path, false)
		sb.WriteString(", ")
		sb.WriteString(e.Const.String())
		sb.WriteByte(')')
	case xmlval.OpStartsWith:
		sb.WriteString("starts-with(")
		writePath(sb, e.Path, false)
		sb.WriteString(", ")
		sb.WriteString(e.Const.String())
		sb.WriteByte(')')
	default:
		writePath(sb, e.Path, false)
		sb.WriteString(e.Op.String())
		sb.WriteString(e.Const.String())
	}
}

// Equal reports structural equality of two filters.
func (f *Filter) Equal(g *Filter) bool { return pathEqual(f.Path, g.Path) }

func pathEqual(a, b *Path) bool {
	if len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		sa, sb := &a.Steps[i], &b.Steps[i]
		if sa.Axis != sb.Axis || sa.Test != sb.Test || len(sa.Preds) != len(sb.Preds) {
			return false
		}
		for j := range sa.Preds {
			if !exprEqual(sa.Preds[j], sb.Preds[j]) {
				return false
			}
		}
	}
	return true
}

func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *And:
		y, ok := b.(*And)
		return ok && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *Or:
		y, ok := b.(*Or)
		return ok && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && exprEqual(x.X, y.X)
	case *Exists:
		y, ok := b.(*Exists)
		return ok && pathEqual(x.Path, y.Path)
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && x.Const == y.Const && pathEqual(x.Path, y.Path)
	default:
		return false
	}
}

// CountAtomicPredicates returns the number of atomic predicates in the
// filter — the workload-size measure used throughout the paper's evaluation
// ("total number of atomic predicates"). A comparison is one atomic
// predicate; a bare existence test counts only when it contains no nested
// comparison (it then carries the implicit true predicate of Sec. 3.2).
func (f *Filter) CountAtomicPredicates() int {
	n := 0
	var walkExpr func(Expr)
	var walkPath func(*Path)
	hasCmp := func(e Expr) bool {
		var rec func(Expr) bool
		var recPath func(*Path) bool
		rec = func(e Expr) bool {
			switch x := e.(type) {
			case *And:
				return rec(x.L) || rec(x.R)
			case *Or:
				return rec(x.L) || rec(x.R)
			case *Not:
				return rec(x.X)
			case *Exists:
				return recPath(x.Path)
			case *Cmp:
				return true
			}
			return false
		}
		recPath = func(p *Path) bool {
			for i := range p.Steps {
				for _, q := range p.Steps[i].Preds {
					if rec(q) {
						return true
					}
				}
			}
			return false
		}
		return rec(e)
	}
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *And:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Or:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Not:
			walkExpr(x.X)
		case *Exists:
			if !hasCmp(x) {
				n++
			}
			walkPath(x.Path)
		case *Cmp:
			n++
			walkPath(x.Path)
		}
	}
	walkPath = func(p *Path) {
		for i := range p.Steps {
			for _, q := range p.Steps[i].Preds {
				walkExpr(q)
			}
		}
	}
	walkPath(f.Path)
	if n == 0 {
		// A purely structural filter counts as one implicit true
		// predicate, per Sec. 3.2.
		return 1
	}
	return n
}

// HasDescendant reports whether the filter uses the // axis anywhere. The
// early-notification optimization needs this to decide whether the
// bottom-up/top-down intersection fix is required (Sec. 5).
func (f *Filter) HasDescendant() bool {
	found := false
	var walkExpr func(Expr)
	var walkPath func(*Path, bool)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *And:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Or:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Not:
			walkExpr(x.X)
		case *Exists:
			walkPath(x.Path, false)
		case *Cmp:
			walkPath(x.Path, false)
		}
	}
	walkPath = func(p *Path, absolute bool) {
		for i := range p.Steps {
			s := &p.Steps[i]
			if s.Axis == Descendant {
				found = true
			}
			for _, q := range s.Preds {
				walkExpr(q)
			}
		}
	}
	walkPath(f.Path, true)
	return found
}
