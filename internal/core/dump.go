package core

import (
	"fmt"
	"io"
	"sort"
)

// DumpTables renders the machine's materialised states and transition
// tables in the style of Fig. 3 of the paper: the bottom-up state family,
// the value index entries, Tpop, Tbadd and Taccept. Intended for
// debugging, teaching, and the xpushdump tool; combine with PrecomputeEager
// to see the complete machine of a small workload.
func (m *Machine) DumpTables(w io.Writer) error {
	fmt.Fprintf(w, "bottom-up states (%d):\n", len(m.bsets))
	for i, set := range m.bsets {
		fmt.Fprintf(w, "  q%-4d = %v\n", i, set)
	}
	if m.opts.TopDown {
		fmt.Fprintf(w, "top-down states (%d):\n", len(m.tsets))
		for i, set := range m.tsets {
			fmt.Fprintf(w, "  t%-4d = %v\n", i, set)
		}
	}

	fmt.Fprintln(w, "Tvalue (representative value -> state):")
	for _, v := range m.index.Representatives() {
		id := m.valueState(m.qtForDump(), v)
		fmt.Fprintf(w, "  %-16q -> q%d\n", v.Text, id)
	}

	fmt.Fprintln(w, "Tpop[q][label] -> q:")
	popKeys := make([]popKey, 0, len(m.popTab))
	for k := range m.popTab {
		popKeys = append(popKeys, k)
	}
	sort.Slice(popKeys, func(i, j int) bool {
		a, b := popKeys[i], popKeys[j]
		if a.qb != b.qb {
			return a.qb < b.qb
		}
		return a.sym < b.sym
	})
	for _, k := range popKeys {
		e := m.popTab[k]
		fmt.Fprintf(w, "  Tpop[q%d][%s] = q%d", k.qb, m.afa.Syms.Name(k.sym), e.state)
		if len(e.early) > 0 {
			fmt.Fprintf(w, "  (early: %v)", e.early)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "Tbadd[qs][q] -> q:")
	addKeys := make([]addKey, 0, len(m.addTab))
	for k := range m.addTab {
		addKeys = append(addKeys, k)
	}
	sort.Slice(addKeys, func(i, j int) bool {
		a, b := addKeys[i], addKeys[j]
		if a.qbs != b.qbs {
			return a.qbs < b.qbs
		}
		return a.qaux < b.qaux
	})
	for _, k := range addKeys {
		fmt.Fprintf(w, "  Tbadd[q%d][q%d] = q%d\n", k.qbs, k.qaux, m.addTab[k])
	}

	fmt.Fprintln(w, "Taccept (non-empty):")
	for i := range m.bsets {
		if acc := m.acceptOf(int32(i)); len(acc) > 0 {
			fmt.Fprintf(w, "  Taccept[q%d] = %v\n", i, acc)
		}
	}
	return nil
}

// qtForDump returns the top-down state to key dump lookups by (the basic
// machine always uses 0).
func (m *Machine) qtForDump() int32 { return 0 }
