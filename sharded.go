package xpushstream

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sax"
	"repro/internal/trace"
)

// ShardedEngine partitions one workload across several engines that filter
// each document in parallel. Queries are distributed round-robin.
//
// Use it deliberately: because the warm XPush machine processes each event
// in O(1) time regardless of workload size (the paper's central property),
// workload sharding does NOT speed up a warm machine — every shard still
// consumes every event, so total work grows with the shard count
// (BenchmarkSharded demonstrates this, a nice empirical confirmation of the
// O(1) claim). Sharding pays off in the phases whose cost grows with
// workload size: cold-start lazy construction, very large machine states,
// and per-document match-set assembly on unselective workloads. For raw
// throughput on a warm machine, parallelise over documents with Pool
// instead.
// Like Engine, a ShardedEngine processes one stream at a time: FilterDocument
// reuses per-document buffers across calls and is not safe for concurrent
// use (the shards still filter each single document in parallel internally).
type ShardedEngine struct {
	shards  []*Engine
	mapping [][]int // per shard: local index -> global index
	n       int

	// Per-document scratch, reused across FilterDocument calls.
	col     sax.Collector
	results [][]int
	errs    []error

	// Stream observability (atomic: Stats may be scraped mid-document).
	bytes atomic.Int64
	lat   obs.Histogram
}

// CompileSharded compiles a workload split across the given number of
// shards (<= 0 selects GOMAXPROCS). The shard count never exceeds the
// workload size: an empty workload collapses to a single empty shard
// instead of GOMAXPROCS idle ones.
func CompileSharded(queries []string, cfg Config, shards int) (*ShardedEngine, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(queries) {
		shards = len(queries)
	}
	if shards == 0 {
		shards = 1
	}
	s := &ShardedEngine{n: len(queries)}
	parts := make([][]string, shards)
	s.mapping = make([][]int, shards)
	for i, q := range queries {
		sh := i % shards
		parts[sh] = append(parts[sh], q)
		s.mapping[sh] = append(s.mapping[sh], i)
	}
	for sh := 0; sh < shards; sh++ {
		e, err := Compile(parts[sh], cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
		s.shards = append(s.shards, e)
	}
	return s, nil
}

// NumQueries returns the workload size.
func (s *ShardedEngine) NumQueries() int { return s.n }

// NumShards returns the shard count.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// FilterDocument filters one document on all shards concurrently and
// returns the sorted global indexes of matching filters. The document is
// parsed once; shards consume the shared event sequence. The parse buffer
// is reused across calls, so FilterDocument is not safe for concurrent use
// (matching Engine.FilterDocument).
func (s *ShardedEngine) FilterDocument(doc []byte) ([]int, error) {
	return s.filterDocument(doc, nil, trace.NoSpan)
}

// filterDocument is the shared body of FilterDocument and
// FilterDocumentTraced; tc is nil for untraced documents.
func (s *ShardedEngine) filterDocument(doc []byte, tc *trace.Ctx, parent trace.SpanID) ([]int, error) {
	start := time.Now()
	parseSpan := tc.StartSpan("parse", parent)
	s.col.Reset()
	if err := sax.Parse(doc, &s.col); err != nil {
		return nil, err
	}
	tc.SetAttr(parseSpan, "events", int64(len(s.col.Events)))
	tc.EndSpan(parseSpan)
	s.bytes.Add(int64(len(doc)))
	if s.results == nil {
		s.results = make([][]int, len(s.shards))
		s.errs = make([]error, len(s.shards))
	}
	if len(s.shards) == 1 {
		// No fan-out needed; filter on the calling goroutine.
		local, err := s.traceShard(0, tc, parent, s.col.Events)
		if err != nil {
			return nil, fmt.Errorf("shard 0: %w", err)
		}
		out := make([]int, len(local))
		for i, l := range local {
			out[i] = s.mapping[0][l]
		}
		s.lat.Observe(time.Since(start).Seconds())
		return out, nil
	}
	var wg sync.WaitGroup
	for sh := range s.shards {
		s.results[sh] = s.results[sh][:0]
		s.errs[sh] = nil
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			local, err := s.traceShard(sh, tc, parent, s.col.Events)
			if err != nil {
				s.errs[sh] = err
				return
			}
			for _, l := range local {
				s.results[sh] = append(s.results[sh], s.mapping[sh][l])
			}
		}(sh)
	}
	wg.Wait()
	total := 0
	for sh := range s.shards {
		if s.errs[sh] != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, s.errs[sh])
		}
		total += len(s.results[sh])
	}
	out := make([]int, 0, total)
	for sh := range s.shards {
		out = append(out, s.results[sh]...)
	}
	sort.Ints(out)
	s.lat.Observe(time.Since(start).Seconds())
	return out, nil
}

// Train warms every shard with the same data.
func (s *ShardedEngine) Train(data []byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for sh := range s.shards {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			errs[sh] = s.shards[sh].Train(data)
		}(sh)
	}
	wg.Wait()
	for sh, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return nil
}

// Stats aggregates shard counters (documents/events are per-stream and
// taken from shard 0; bytes and filter latency are tracked at the sharded
// engine itself, since every shard sees the same stream). Safe to call
// concurrently with FilterDocument.
func (s *ShardedEngine) Stats() Stats {
	var out Stats
	var sizeSum float64
	for i, e := range s.shards {
		st := e.Stats()
		out.States += st.States
		out.TopDownStates += st.TopDownStates
		sizeSum += st.AvgStateSize * float64(st.States)
		out.Lookups += st.Lookups
		out.Hits += st.Hits
		out.Matches += st.Matches
		out.MixedContentEvents += st.MixedContentEvents
		out.Flushes += st.Flushes
		out.WindowLookups += st.WindowLookups
		out.WindowHits += st.WindowHits
		out.WindowStatesAdded += st.WindowStatesAdded
		if i == 0 {
			out.Documents = st.Documents
			out.Events = st.Events
			out.WindowDocuments = st.WindowDocuments
		}
	}
	out.Bytes = s.bytes.Load()
	out.FilterLatency = s.lat.Snapshot()
	finishStats(&out, sizeSum)
	return out
}
