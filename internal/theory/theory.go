// Package theory implements the analytical model of Sec. 6 of the paper:
// the clique bound of Theorem 6.1 and the expected-state-count formulas of
// Theorem 6.2 for flat workloads, together with a flat-workload constructor
// so the formulas can be validated against the real lazy XPush machine.
//
// A flat workload is n queries of the form
//
//	/a[b1/text() = v1 and ... and bk/text() = vk]
//
// with all atomic predicates of the same selectivity σ.
package theory

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// ExpectedStatesNoOrder is Theorem 6.2(1): without the order optimization,
// the expected number of lazily created states over N documents is at most
// 1 + N·m·σ, where m is the total number of distinct atomic predicates.
func ExpectedStatesNoOrder(nDocs, m int, sigma float64) float64 {
	return 1 + float64(nDocs)*float64(m)*sigma
}

// ExpectedStatesOrder is Theorem 6.2(2): with the order optimization, the
// expected number of states is at most N·((1-σ^(k+1))/(1-σ))^n for n
// queries of exactly k predicates each.
func ExpectedStatesOrder(nDocs, nQueries, k int, sigma float64) float64 {
	if sigma <= 0 {
		return float64(nDocs)
	}
	if sigma >= 1 {
		sigma = 1 - 1e-9
	}
	base := (1 - powf(sigma, k+1)) / (1 - sigma)
	return float64(nDocs) * powf(base, nQueries)
}

func powf(x float64, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= x
	}
	return r
}

// FlatWorkload builds n flat queries of k predicates each. Query i uses
// constants chosen so that a document generator with the matching
// selectivity can satisfy each predicate independently: predicate j of query
// i compares b<j> with constant i (all queries share the element names
// b1..bk, so predicates with equal j and different i share the atomic
// predicate index but not the truth value).
func FlatWorkload(n, k int) []*xpath.Filter {
	out := make([]*xpath.Filter, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		sb.WriteString("/a[")
		for j := 0; j < k; j++ {
			if j > 0 {
				sb.WriteString(" and ")
			}
			fmt.Fprintf(&sb, "b%d/text()=%d", j, i)
		}
		sb.WriteString("]")
		out[i] = xpath.MustParse(sb.String())
	}
	return out
}

// FlatDTD returns the DTD ordering b0 ≺ b1 ≺ ... ≺ b<k-1> under /a, which
// the order optimization consumes.
func FlatDTD(k int) *dtd.DTD {
	var sb strings.Builder
	sb.WriteString("<!ELEMENT a (")
	for j := 0; j < k; j++ {
		if j > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "b%d", j)
	}
	sb.WriteString(")>\n")
	for j := 0; j < k; j++ {
		fmt.Fprintf(&sb, "<!ELEMENT b%d (#PCDATA)>\n", j)
	}
	return dtd.MustParse(sb.String())
}

// FlatDocuments generates nDocs flat documents for a FlatWorkload(n, k):
// element b<j>'s text equals constant i (for a random query i) with
// probability n·σ, so each individual predicate holds with probability ≈ σ,
// matching the theorem's setup. Values outside [0, n) satisfy nothing.
func FlatDocuments(r *rand.Rand, nDocs, n, k int, sigma float64) []byte {
	var sb strings.Builder
	for d := 0; d < nDocs; d++ {
		sb.WriteString("<a>")
		for j := 0; j < k; j++ {
			var v int
			if r.Float64() < sigma*float64(n) {
				v = r.Intn(n) // satisfies query v's predicate j
			} else {
				v = n + r.Intn(1000) // satisfies nothing
			}
			fmt.Fprintf(&sb, "<b%d>%d</b%d>", j, v, j)
		}
		sb.WriteString("</a>\n")
	}
	return []byte(sb.String())
}
