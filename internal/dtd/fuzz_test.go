package dtd

import "testing"

// FuzzParse checks the DTD parser never panics and that accepted DTDs
// survive a render/re-parse round trip with identical derived structure.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<!ELEMENT a (b, c?, d*)><!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY><!ELEMENT d ANY>`,
		`<!ELEMENT a (b | (c, d))+><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>`,
		`<!ELEMENT a (#PCDATA | e)*><!ELEMENT e (#PCDATA)>`,
		`<!ELEMENT p (q)><!ATTLIST p x CDATA #REQUIRED y (u|v) "u" z CDATA #FIXED "k">`,
		`<!-- comment --><?pi?><!ENTITY x "y"><!ELEMENT a EMPTY>`,
		`<!ELEMENT a (`,
		`<!ATTLIST a x CDATA>`,
		`<!ELEMENT part (name, part*)><!ELEMENT name (#PCDATA)>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(input)
		if err != nil {
			return
		}
		rendered := d.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered DTD failed: %v\n%s", err, rendered)
		}
		if len(again.Elements) != len(d.Elements) || again.Root != d.Root {
			t.Fatalf("round trip changed structure: %d/%s vs %d/%s",
				len(d.Elements), d.Root, len(again.Elements), again.Root)
		}
		for _, name := range d.ElementNames() {
			a, b := d.Element(name), again.Element(name)
			if b == nil || a.Kind != b.Kind || len(a.Attrs) != len(b.Attrs) {
				t.Fatalf("element %s changed across round trip", name)
			}
		}
		// Derived analyses must not panic.
		_ = d.IsRecursive()
		_ = d.MaxDepth(64)
		_ = d.SiblingOrder()
	})
}
