package server

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func mkDelivery(i int) delivery {
	return delivery{doc: []byte{byte(i)}, enq: time.Now()}
}

// drain pops everything currently queued and returns the doc tags.
func drainTags(q *queue) []byte {
	var out []byte
	for {
		select {
		case d := <-q.ch:
			out = append(out, d.doc[0])
		default:
			return out
		}
	}
}

func TestQueueDropOldest(t *testing.T) {
	var dropped obs.Counter
	q := newQueue(2, DropOldest, 0, &dropped)
	for i := 0; i < 5; i++ {
		if q.push(mkDelivery(i)) {
			t.Fatal("drop-oldest requested a disconnect")
		}
	}
	if got := drainTags(q); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("queue kept %v, want the newest [3 4]", got)
	}
	if n := dropped.Value(); n != 3 {
		t.Errorf("dropped %d, want 3", n)
	}
}

func TestQueueDropNewest(t *testing.T) {
	var dropped obs.Counter
	q := newQueue(2, DropNewest, 0, &dropped)
	for i := 0; i < 5; i++ {
		if q.push(mkDelivery(i)) {
			t.Fatal("drop-newest requested a disconnect")
		}
	}
	if got := drainTags(q); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("queue kept %v, want the oldest [0 1]", got)
	}
	if n := dropped.Value(); n != 3 {
		t.Errorf("dropped %d, want 3", n)
	}
}

func TestQueueBlockWaitsForSpace(t *testing.T) {
	var dropped obs.Counter
	q := newQueue(1, Block, time.Second, &dropped)
	q.push(mkDelivery(0))
	freed := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		<-q.ch // consumer frees a slot
		close(freed)
	}()
	start := time.Now()
	if q.push(mkDelivery(1)) {
		t.Fatal("block requested a disconnect")
	}
	<-freed
	if time.Since(start) < 10*time.Millisecond {
		t.Error("push did not block for queue space")
	}
	if n := dropped.Value(); n != 0 {
		t.Errorf("dropped %d, want 0 (lossless when space frees in time)", n)
	}
}

func TestQueueBlockDeadlineDrops(t *testing.T) {
	var dropped obs.Counter
	q := newQueue(1, Block, 10*time.Millisecond, &dropped)
	q.push(mkDelivery(0))
	if q.push(mkDelivery(1)) {
		t.Fatal("block requested a disconnect")
	}
	if n := dropped.Value(); n != 1 {
		t.Errorf("dropped %d, want 1 after the deadline expired", n)
	}
}

func TestQueueDisconnect(t *testing.T) {
	var dropped obs.Counter
	q := newQueue(1, Disconnect, 0, &dropped)
	if q.push(mkDelivery(0)) {
		t.Fatal("disconnect on a non-full queue")
	}
	if !q.push(mkDelivery(1)) {
		t.Fatal("overflow under disconnect did not request a disconnect")
	}
	if n := dropped.Value(); n != 1 {
		t.Errorf("dropped %d, want 1", n)
	}
}

func TestQueueConsumeFlushesOnClose(t *testing.T) {
	var dropped obs.Counter
	q := newQueue(8, DropNewest, 0, &dropped)
	for i := 0; i < 5; i++ {
		q.push(mkDelivery(i))
	}
	q.close()
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.consume(func(ds []delivery) bool {
			for _, d := range ds {
				got = append(got, d.doc[0])
			}
			return true
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consume did not exit after close")
	}
	if len(got) != 5 {
		t.Errorf("flushed %d deliveries, want 5", len(got))
	}
	for i, b := range got {
		if int(b) != i {
			t.Errorf("delivery %d out of order: got tag %d", i, b)
		}
	}
}

// TestQueueConsumeBatchesReadyItems pins the delivery-coalescing contract:
// everything queued at one wakeup reaches the deliver callback as a single
// batch (one flush on the wire), in FIFO order.
func TestQueueConsumeBatchesReadyItems(t *testing.T) {
	var dropped obs.Counter
	q := newQueue(8, DropNewest, 0, &dropped)
	for i := 0; i < 5; i++ {
		q.push(mkDelivery(i))
	}
	q.close()
	var sizes []int
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.consume(func(ds []delivery) bool {
			sizes = append(sizes, len(ds))
			for _, d := range ds {
				got = append(got, d.doc[0])
			}
			return true
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consume did not exit after close")
	}
	if len(sizes) != 1 || sizes[0] != 5 {
		t.Fatalf("batch sizes = %v, want one batch of 5", sizes)
	}
	for i, b := range got {
		if int(b) != i {
			t.Errorf("delivery %d out of order: got tag %d", i, b)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"drop-oldest", "drop-newest", "block", "disconnect"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	for _, s := range []string{"engine", "pool", "sharded"} {
		if _, err := ParseBackend(s); err != nil {
			t.Errorf("ParseBackend(%q): %v", s, err)
		}
	}
	if _, err := ParseBackend("bogus"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
}
