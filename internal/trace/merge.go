package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// NodeTraces is one node's /debug/traces payload tagged with the node's
// address, the merge exporter's per-hop input.
type NodeTraces struct {
	Node   string
	Traces []JSONTrace
}

// MergeChrome stitches a gate's traces and the node-side traces that
// carried the same ids into one Chrome trace_event document: each gate
// trace becomes one process (pid = trace id) whose first rows are the
// gate's own spans (ingress, per-node fan-out, ack aggregation) and whose
// remaining rows are each matching node trace's spans (wal_append, filter,
// queue_wait, deliver_write), wall-clock aligned against the gate's
// timeline and labeled with the node address. A node trace matches when it
// is Remote (its id was assigned upstream) and its id equals the gate
// trace's — BeginRemote guarantees both on the propagation path.
//
// Alignment uses each process's wall clock, so cross-machine skew shifts
// node rows by the clock offset; span durations are unaffected (they are
// monotonic on each hop).
func MergeChrome(w io.Writer, gate []JSONTrace, nodes []NodeTraces) error {
	// Index node traces by id, keeping the node ordering deterministic.
	type hop struct {
		node  string
		trace *JSONTrace
	}
	byID := make(map[uint64][]hop)
	for ni := range nodes {
		for ti := range nodes[ni].Traces {
			t := &nodes[ni].Traces[ti]
			if !t.Remote {
				continue
			}
			byID[t.ID] = append(byID[t.ID], hop{node: nodes[ni].Node, trace: t})
		}
	}

	var base time.Time
	for i := range gate {
		if base.IsZero() || gate[i].Wall.Before(base) {
			base = gate[i].Wall
		}
	}

	ew := &eventWriter{w: w}
	if err := ew.open(); err != nil {
		return err
	}
	for gi := range gate {
		g := &gate[gi]
		off := g.Wall.Sub(base).Nanoseconds()
		maxTrack := int32(0)
		for si := range g.Spans {
			s := &g.Spans[si]
			if s.Track > maxTrack {
				maxTrack = s.Track
			}
			if err := ew.span(g.ID, off, s, s.Track+1, s.Name == g.Kind && s.Parent == NoSpan); err != nil {
				return err
			}
		}
		if len(g.Spans) > 0 {
			if err := ew.meta("process_name", g.ID, 0, fmt.Sprintf("%s trace %d", g.Kind, g.ID)); err != nil {
				return err
			}
			if err := ew.meta("thread_name", g.ID, 1, "gate"); err != nil {
				return err
			}
		}
		tidBase := maxTrack + 1
		hops := byID[g.ID]
		sort.SliceStable(hops, func(i, j int) bool { return hops[i].node < hops[j].node })
		for _, h := range hops {
			t := h.trace
			hopOff := t.Wall.Sub(base).Nanoseconds()
			hopMax := int32(0)
			for si := range t.Spans {
				s := &t.Spans[si]
				if s.Track > hopMax {
					hopMax = s.Track
				}
				if err := ew.span(g.ID, hopOff, s, tidBase+s.Track+1, false); err != nil {
					return err
				}
			}
			if len(t.Spans) > 0 {
				if err := ew.meta("thread_name", g.ID, int64(tidBase)+1, fmt.Sprintf("node %s (%s)", h.node, t.Kind)); err != nil {
					return err
				}
			}
			tidBase += hopMax + 1
		}
	}
	return ew.close()
}

// eventWriter emits a Chrome trace_event JSON array one event at a time.
type eventWriter struct {
	w     io.Writer
	wrote bool
}

func (e *eventWriter) open() error {
	_, err := io.WriteString(e.w, "[\n")
	return err
}

func (e *eventWriter) emit(ev map[string]any) error {
	if e.wrote {
		if _, err := io.WriteString(e.w, ",\n"); err != nil {
			return err
		}
	}
	e.wrote = true
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = e.w.Write(b)
	return err
}

func (e *eventWriter) span(pid uint64, offNS int64, s *JSONSpan, tid int32, root bool) error {
	args := map[string]any{"trace_id": pid}
	for _, a := range s.Attrs {
		args[a.Key] = a.Val
	}
	cat := "span"
	if root {
		cat = "root"
	}
	return e.emit(map[string]any{
		"name": s.Name,
		"ph":   "X",
		"ts":   float64(offNS+s.StartNS) / 1e3,
		"dur":  float64(s.DurNS) / 1e3,
		"pid":  pid,
		"tid":  tid,
		"cat":  cat,
		"args": args,
	})
}

func (e *eventWriter) meta(kind string, pid uint64, tid int64, name string) error {
	ev := map[string]any{
		"name": kind, "ph": "M", "pid": pid,
		"args": map[string]any{"name": name},
	}
	if kind == "thread_name" {
		ev["tid"] = tid
	}
	return e.emit(ev)
}

func (e *eventWriter) close() error {
	_, err := io.WriteString(e.w, "\n]\n")
	return err
}
