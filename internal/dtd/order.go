package dtd

// Sibling-order extraction for the order optimization of Sec. 5: the partial
// order a ≺ b holds when a must precede b whenever a and b are siblings.
// Per the paper, every attribute precedes every element; additional order
// between elements is extracted from sequence content models.

// Order is the derived sibling partial order over element and attribute
// labels. Attribute labels carry the "@" prefix, matching the SAX event
// naming convention.
type Order struct {
	prec map[[2]string]bool
}

// EmptyOrder returns the order containing only the universal
// attributes-before-elements rule (used when no DTD is available).
func EmptyOrder() *Order { return &Order{prec: map[[2]string]bool{}} }

// Precedes reports whether label a must precede label b whenever they are
// siblings.
func (o *Order) Precedes(a, b string) bool {
	aAttr := len(a) > 0 && a[0] == '@'
	bAttr := len(b) > 0 && b[0] == '@'
	switch {
	case aAttr && !bAttr:
		return true // attributes precede elements
	case !aAttr && bAttr:
		return false
	case aAttr && bAttr:
		return false // attribute order is not significant
	default:
		return o.prec[[2]string{a, b}]
	}
}

// ElementPairs returns the number of ordered element pairs (for reporting).
func (o *Order) ElementPairs() int { return len(o.prec) }

// SiblingOrder derives the partial order from all content models. A pair
// (a, b) enters the order iff some parent's content model forces every a
// sibling before every b sibling, and no parent allows them to interleave or
// to occur in the opposite order.
func (d *DTD) SiblingOrder() *Order {
	prec := map[[2]string]bool{}
	conc := map[[2]string]bool{}
	for _, name := range d.order {
		el := d.Elements[name]
		switch el.Kind {
		case Children:
			analyzeParticle(el.Content, el.Content.Rep == Star || el.Content.Rep == Plus, prec, conc)
		case Mixed, Any:
			// No order information: all child pairs may interleave.
			children := d.Children(name)
			for _, a := range children {
				for _, b := range children {
					if a != b {
						conc[[2]string{a, b}] = true
					}
				}
			}
		}
	}
	out := map[[2]string]bool{}
	for pair := range prec {
		rev := [2]string{pair[1], pair[0]}
		if !conc[pair] && !conc[rev] && !prec[rev] {
			out[pair] = true
		}
	}
	return &Order{prec: out}
}

// particleNames collects the distinct child names of a particle subtree.
func particleNames(p *Particle, into map[string]bool) {
	if p.Kind == NameParticle {
		into[p.Name] = true
		return
	}
	for _, c := range p.Children {
		particleNames(c, into)
	}
}

// analyzeParticle records must-precede pairs (prec) and possibly-interleaved
// pairs (conc) for one content particle. repeated reports whether the whole
// subtree can repeat (an ancestor, or the particle itself, has * or +), in
// which case every internal pair may interleave across iterations.
func analyzeParticle(p *Particle, repeated bool, prec, conc map[[2]string]bool) {
	if p.Kind == NameParticle {
		return
	}
	if repeated {
		// All distinct pairs inside a repeated group can occur in
		// either order across iterations.
		names := map[string]bool{}
		particleNames(p, names)
		for a := range names {
			for b := range names {
				if a != b {
					conc[[2]string{a, b}] = true
				}
			}
		}
		// Still recurse so nested repetitions are handled uniformly
		// (redundant but harmless).
		for _, c := range p.Children {
			analyzeParticle(c, true, prec, conc)
		}
		return
	}
	switch p.Kind {
	case ChoiceParticle:
		// Alternatives never co-occur: no cross-branch constraints.
		for _, c := range p.Children {
			analyzeParticle(c, c.Rep == Star || c.Rep == Plus, prec, conc)
		}
	case SeqParticle:
		// Names confined to earlier slots precede names confined to
		// later slots. A name spanning several slots orders with
		// nothing at this level.
		minSlot := map[string]int{}
		maxSlot := map[string]int{}
		for i, c := range p.Children {
			names := map[string]bool{}
			particleNames(c, names)
			for n := range names {
				if _, ok := minSlot[n]; !ok {
					minSlot[n] = i
				}
				maxSlot[n] = i
			}
		}
		for a, amax := range maxSlot {
			for b, bmin := range minSlot {
				if a == b {
					continue
				}
				if amax < bmin {
					prec[[2]string{a, b}] = true
				} else if minSlot[a] <= maxSlot[b] && bmin <= amax {
					// Slot ranges overlap: the pair may
					// interleave unless both are confined to
					// the same single child (the recursion
					// decides that case).
					if !(minSlot[a] == amax && bmin == maxSlot[b] && amax == maxSlot[b]) {
						conc[[2]string{a, b}] = true
					}
				}
			}
		}
		for _, c := range p.Children {
			analyzeParticle(c, c.Rep == Star || c.Rep == Plus, prec, conc)
		}
	}
}
