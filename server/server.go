package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	xpushstream "repro"
	"repro/internal/afa"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// Backend selects the filtering deployment behind the broker.
type Backend string

const (
	// BackendEngine is a single shared engine: publishes are serialized,
	// subscription changes are cheap copy-on-write layer derivations that
	// keep the warm machine state (the default, and the only backend that
	// supports snapshot checkpoints).
	BackendEngine Backend = "engine"
	// BackendPool runs publishes concurrently on a pool of engine clones
	// (documents are embarrassingly parallel). Subscription changes
	// rebuild the pool, so it fits mostly-static workloads under heavy
	// publish traffic.
	BackendPool Backend = "pool"
	// BackendSharded partitions the workload across shards that filter
	// each document in parallel — for huge cold workloads (see the
	// ShardedEngine caveats). Subscription changes recompile the shards.
	BackendSharded Backend = "sharded"
)

// ParseBackend validates a backend name from configuration.
func ParseBackend(s string) (Backend, error) {
	switch b := Backend(s); b {
	case BackendEngine, BackendPool, BackendSharded:
		return b, nil
	case "":
		return BackendEngine, nil
	}
	return "", fmt.Errorf("server: unknown backend %q (want %s, %s, or %s)",
		s, BackendEngine, BackendPool, BackendSharded)
}

// Config configures a Server. The zero value listens on a random loopback
// port with the engine backend, drop-newest backpressure, and no metrics
// endpoint.
type Config struct {
	// Addr is the data-plane listen address ("" = 127.0.0.1:0).
	Addr string
	// MetricsAddr serves GET /metrics and /healthz ("" = disabled).
	MetricsAddr string
	// DebugAddr serves the introspection endpoints ("" = disabled):
	// /debug/traces (recorded document traces), /debug/machine (live
	// filter-machine snapshot), /debug/pprof/* (Go profiling), plus
	// /metrics and /healthz. pprof exposes heap contents — bind it to
	// loopback or a trusted network.
	DebugAddr string

	// TraceSample enables head sampling: one of every TraceSample published
	// documents is traced end to end (PUBLISH receive through the last
	// DELIVER write, including WAL fsync and queue wait). 0 disables.
	TraceSample int
	// TraceSlow enables tail capture: every document is measured and any
	// whose end-to-end latency exceeds the threshold is kept in a separate
	// slow-trace ring regardless of sampling. 0 disables. With both
	// TraceSample and TraceSlow zero, tracing is compiled in but fully
	// disabled and the publish hot path stays zero-allocation.
	TraceSlow time.Duration

	// Backend selects the filtering deployment ("" = BackendEngine).
	Backend Backend
	// Workers sets the pool size / shard count (<= 0 = GOMAXPROCS).
	Workers int
	// Engine is the compile configuration for the filter workload.
	Engine xpushstream.Config
	// InitialQueries is the boot workload (e.g. for warm-start
	// benchmarks); its filters are unbound until a subscriber claims new
	// ones, but they warm the machine.
	InitialQueries []string

	// Policy selects the slow-subscriber backpressure policy
	// ("" = DropNewest).
	Policy Policy
	// QueueDepth bounds each subscriber's delivery queue (<= 0 = 128).
	QueueDepth int
	// BlockDeadline is the Block policy's maximum wait for queue space
	// (<= 0 = 1s).
	BlockDeadline time.Duration

	// AsyncPublishWindow bounds how many PublishAsync frames one connection
	// may have in flight before its read loop stops consuming new frames
	// (<= 0 = 256). The window is the server-side backstop; clients window
	// themselves via Client.PublishPipelined.
	AsyncPublishWindow int

	// MaxConns bounds concurrent connections (0 = unlimited).
	MaxConns int
	// MaxDocBytes bounds a published document, mirroring
	// sax.Splitter.MaxDocBytes on the streaming publish path
	// (0 = 64 MiB). It is enforced as the frame payload limit.
	MaxDocBytes int
	// ReadTimeout is the per-frame read deadline for connections with no
	// active subscriptions (0 = none). Subscriber connections are exempt:
	// they legitimately go quiet forever.
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (0 = none).
	WriteTimeout time.Duration

	// WAL, when set, makes publishing durable: every document is appended
	// to the log (assigned a monotonic offset) before fan-out, and durable
	// subscriptions replay from it. Use WrapWAL to pass a *wal.Log.
	WAL DocLog
	// Cursors persists durable subscribers' replay cursors; durable
	// subscriptions require it alongside WAL.
	Cursors CursorStore

	// DedupDisabled turns off workload-level query deduplication: every
	// subscription compiles its own machine query as in pre-dedup
	// brokers. Only for A/B benchmarking and debugging — zipfian
	// workloads cost dramatically more this way.
	DedupDisabled bool
	// ConsolidateLayers triggers engine-layer consolidation on the swap
	// path once the copy-on-write engine exceeds this many layers
	// (0 = default 32, negative = never). Consolidation recompiles the
	// workload into one machine, dropping removed filters; the rebuilt
	// machine starts cold and re-warms lazily.
	ConsolidateLayers int
	// ConsolidateRemoved triggers consolidation once this many removed
	// filter slots have accumulated (0 = default 256, negative = never).
	ConsolidateRemoved int

	// SnapshotPath enables warm-start: on boot, if the file exists, the
	// workload and machine state are restored from it (engine backend
	// only); Checkpoint and Shutdown write it.
	SnapshotPath string
	// SnapshotInterval enables periodic checkpoints (0 = only on
	// Shutdown).
	SnapshotInterval time.Duration

	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) maxDocBytes() int {
	if c.MaxDocBytes > 0 {
		return c.MaxDocBytes
	}
	return 64 << 20
}

func (c *Config) blockDeadline() time.Duration {
	if c.BlockDeadline > 0 {
		return c.BlockDeadline
	}
	return time.Second
}

func (c *Config) asyncPublishWindow() int {
	if c.AsyncPublishWindow > 0 {
		return c.AsyncPublishWindow
	}
	return 256
}

func (c *Config) consolidateLayers() int {
	if c.ConsolidateLayers != 0 {
		return c.ConsolidateLayers
	}
	return 32
}

func (c *Config) consolidateRemoved() int {
	if c.ConsolidateRemoved != 0 {
		return c.ConsolidateRemoved
	}
	return 256
}

// errDraining rejects work arriving during graceful shutdown.
var errDraining = errors.New("server: draining")

// deadKey marks a removed engine slot in core.keys: it is never registered
// in the dedup registry, so fan-out lookups skip it.
const deadKey = ^uint64(0)

// core is one immutable generation of the broker's workload: the compiled
// backend plus the engine-index -> registry-key translation. Workload
// changes (first compile of a canonical filter, last release, layer
// consolidation) build the next core off to the side and atomically swap
// the pointer (copy-on-write), so the publish path never observes a
// half-updated workload — it either filters on the old generation or the
// new one.
//
// Who subscribes to a filter lives in the server's dedup registry, not
// here: subscriber fan-out changes on every subscribe/unsubscribe, while a
// core only changes when the set of unique machine queries does. keys gives
// each engine slot a stable identity across consolidations, so matches
// computed on an older generation still resolve to the right subscribers.
type core struct {
	canon   []string       // engine index -> canonical filter text
	keys    []uint64       // engine index -> stable registry key (deadKey when removed)
	removed []bool         // engine index -> released (engine skips these)
	keyIdx  map[uint64]int // live registry key -> engine index

	engine  *xpushstream.Engine        // BackendEngine
	pool    *xpushstream.Pool          // BackendPool
	sharded *xpushstream.ShardedEngine // BackendSharded
}

// filterDocument runs one document through the core's backend. For the
// engine and sharded backends the caller must hold the server's publish
// lock (they process one stream at a time); the pool backend is internally
// concurrent. tc is nil for untraced documents (the common case) and
// selects the backend's plain filtering path.
func (c *core) filterDocument(doc []byte, tc *trace.Ctx, parent trace.SpanID) ([]int, error) {
	switch {
	case c.pool != nil:
		return c.pool.FilterDocumentTraced(doc, tc, parent)
	case c.sharded != nil:
		return c.sharded.FilterDocumentTraced(doc, tc, parent)
	default:
		return c.engine.FilterDocumentTraced(doc, tc, parent)
	}
}

// concurrent reports whether filterDocument may be called without the
// publish lock.
func (c *core) concurrent() bool { return c.pool != nil }

func (c *core) stats() xpushstream.Stats {
	switch {
	case c.pool != nil:
		return c.pool.Stats()
	case c.sharded != nil:
		return c.sharded.Stats()
	default:
		return c.engine.Stats()
	}
}

// liveQueries counts engine slots that are still routable.
func (c *core) liveQueries() int {
	n := 0
	for _, r := range c.removed {
		if !r {
			n++
		}
	}
	return n
}

// Server is the broker: it owns the listener, the subscription table, the
// copy-on-write filter core, and the per-subscriber delivery queues.
type Server struct {
	cfg Config

	ln       net.Listener
	mln      net.Listener
	dln      net.Listener
	httpSrv  *http.Server
	debugSrv *http.Server
	reg      *obs.Registry
	tracer   *trace.Recorder // nil when tracing is disabled

	// ctl serializes control-plane changes (subscribe/unsubscribe/
	// checkpoint); pubMu serializes filtering for the single-stream
	// backends. They are independent: a subscription change builds the
	// next core without stalling publishes on the current one.
	ctl   sync.Mutex
	pubMu sync.Mutex
	cur   atomic.Pointer[core]

	// subs is the workload dedup registry: canonical filter -> one
	// compiled machine query + the fan-out set of subscriptions sharing
	// it. Subscriptions to an already-compiled filter only touch the
	// registry — no core swap, no engine derivation.
	subs *workload.Dedup[*conn]

	// Workload-analysis metric cache (Theorem 6.1 subsumption pairs over
	// the unique queries): recomputed on scrape only after the unique
	// workload changed.
	anMu    sync.Mutex
	anDirty bool
	anPairs float64

	draining atomic.Bool

	// Durable delivery (nil / empty unless Config.WAL is set).
	wal      DocLog
	cursors  CursorStore
	durMu    sync.Mutex
	durables map[string]*conn // durable name -> owning connection
	noteMu   sync.Mutex
	walNote  chan struct{} // closed-and-replaced on every append

	connMu sync.Mutex
	conns  map[*conn]struct{}

	wg       sync.WaitGroup
	ckStop   chan struct{}
	ckWG     sync.WaitGroup
	closeOne sync.Once

	// prof is the per-query cost profiler, fed only by traced documents
	// (nil when tracing is disabled — the same nil discipline as tracer, so
	// the untraced hot path never touches it).
	prof *queryProfiler

	// Metrics.
	consolidations atomic.Int64 // engine-layer consolidations applied on the swap path
	consolidating  atomic.Int64 // consolidations currently recompiling (in-progress gauge)
	pumpsActive    atomic.Int64 // running durable pump goroutines
	mPublishes     *obs.Counter
	mPublishErrs   *obs.Counter
	mDeliveries    *obs.Counter
	mConnReject    *obs.Counter
	mDropped       map[Policy]*obs.Counter
	mAcks          *obs.Counter
	mDurDeliver    *obs.Counter
	deliverLat     obs.Histogram
	subLat         obs.Histogram // SUBSCRIBE round-trip handling latency
	unsubLat       obs.Histogram // UNSUBSCRIBE round-trip handling latency
	consolidateLat obs.Histogram // duration of each workload consolidation
}

// New compiles (or warm-starts) the workload, starts the listeners, and
// returns a serving broker.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == "" {
		cfg.Backend = BackendEngine
	}
	if cfg.Policy == "" {
		cfg.Policy = DropNewest
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if _, err := ParseBackend(string(cfg.Backend)); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		conns:    map[*conn]struct{}{},
		reg:      obs.NewRegistry(),
		tracer:   trace.New(cfg.TraceSample, cfg.TraceSlow),
		ckStop:   make(chan struct{}),
		wal:      cfg.WAL,
		cursors:  cfg.Cursors,
		durables: map[string]*conn{},
		walNote:  make(chan struct{}),
		subs:     workload.NewDedup[*conn](),
		anDirty:  true,
	}
	if s.tracer.Enabled() {
		s.prof = newQueryProfiler(profilerMaxQueries)
	}
	c, err := s.bootCore()
	if err != nil {
		return nil, err
	}
	s.cur.Store(c)
	s.registerMetrics()

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	s.ln, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.MetricsAddr != "" {
		s.mln, err = net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			s.ln.Close()
			return nil, err
		}
		s.httpSrv = &http.Server{Handler: s.reg.NewMuxWithStatus(s.healthStatus)}
		go s.httpSrv.Serve(s.mln)
	}
	if cfg.DebugAddr != "" {
		s.dln, err = net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			s.ln.Close()
			if s.mln != nil {
				s.mln.Close()
			}
			return nil, err
		}
		s.debugSrv = &http.Server{Handler: s.debugMux()}
		go s.debugSrv.Serve(s.dln)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if cfg.SnapshotPath != "" && cfg.SnapshotInterval > 0 {
		s.ckWG.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// bootCore builds the boot workload: from the snapshot file when warm-start
// is configured and the file exists, otherwise from InitialQueries. Every
// boot filter is registered and pinned in the dedup registry: pinned
// entries stay compiled (and keep counting as publish matches) with zero
// subscribers, and a later subscriber to the same canonical filter rides
// the already-warm machine query.
func (s *Server) bootCore() (*core, error) {
	if s.cfg.SnapshotPath != "" && s.cfg.Backend == BackendEngine {
		if f, err := os.Open(s.cfg.SnapshotPath); err == nil {
			defer f.Close()
			e, err := xpushstream.OpenWorkloadSnapshot(bufio.NewReader(f), s.cfg.Engine)
			if err != nil {
				return nil, fmt.Errorf("server: warm-start from %s: %w", s.cfg.SnapshotPath, err)
			}
			q := e.Queries()
			s.logf("warm-start: restored %d filters, %d machine states from %s",
				len(q), e.Stats().States, s.cfg.SnapshotPath)
			c := &core{canon: q, removed: e.Removed(), engine: e}
			s.indexBootCore(c)
			return c, nil
		}
	}
	// Collapse duplicate boot filters onto one engine slot (unless dedup
	// is disabled), canonicalizing each.
	var canon []string
	seen := map[string]int{}
	for _, q := range s.cfg.InitialQueries {
		cq, err := xpath.Canonicalize(q)
		if err != nil {
			return nil, fmt.Errorf("server: initial query %q: %w", q, err)
		}
		if _, dup := seen[cq]; dup && !s.cfg.DedupDisabled {
			continue
		}
		seen[cq] = len(canon)
		canon = append(canon, cq)
	}
	c, err := s.buildCore(canon, make([]bool, len(canon)), nil)
	if err != nil {
		return nil, err
	}
	s.indexBootCore(c)
	return c, nil
}

// indexBootCore assigns registry keys to a boot core's engine slots and
// pins the live ones.
func (s *Server) indexBootCore(c *core) {
	c.keys = make([]uint64, len(c.canon))
	c.keyIdx = make(map[uint64]int, len(c.canon))
	for i, q := range c.canon {
		if c.removed[i] {
			c.keys[i] = deadKey
			continue
		}
		// A snapshot written by a dedup-disabled broker can hold
		// duplicate texts; only the first copy of each canonical form is
		// shared, the rest stay private slots.
		_, taken := s.subs.Resolve(q)
		key := s.subs.Register(q, !taken && !s.cfg.DedupDisabled)
		s.subs.Pin(key)
		c.keys[i] = key
		c.keyIdx[key] = i
	}
	s.markAnalysisDirty()
}

// buildCore compiles a workload of canonical filter texts for the
// configured backend. For the engine backend, derived is used when non-nil
// (the copy-on-write fast path); the pool and sharded backends always
// recompile. keys/keyIdx are left for the caller to assign.
func (s *Server) buildCore(canon []string, removed []bool, derived *xpushstream.Engine) (*core, error) {
	c := &core{canon: canon, removed: removed}
	switch s.cfg.Backend {
	case BackendPool:
		e, err := s.compileWithRemoved(canon, removed)
		if err != nil {
			return nil, err
		}
		c.pool, err = xpushstream.NewPool(e, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
	case BackendSharded:
		var err error
		c.sharded, err = xpushstream.CompileSharded(canon, s.cfg.Engine, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
	default:
		if derived != nil {
			c.engine = derived
			break
		}
		e, err := s.compileWithRemoved(canon, removed)
		if err != nil {
			return nil, err
		}
		c.engine = e
	}
	return c, nil
}

func (s *Server) compileWithRemoved(queries []string, removed []bool) (*xpushstream.Engine, error) {
	e, err := xpushstream.Compile(queries, s.cfg.Engine)
	if err != nil {
		return nil, err
	}
	for i, r := range removed {
		if r {
			if err := e.RemoveQuery(i); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// Addr returns the data-plane listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the /metrics listen address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.mln == nil {
		return ""
	}
	return s.mln.Addr().String()
}

// Stats returns the current workload generation's engine statistics.
func (s *Server) Stats() xpushstream.Stats { return s.cur.Load().stats() }

// Registry exposes the server's metric registry so embedders (like
// examples/netrouter) can add their own series next to the built-ins.
func (s *Server) Registry() *xpushstream.Registry { return s.reg }

// ConnectionsRejected reports how many connections the MaxConns limit has
// refused since boot (also exported as xpush_conns_rejected_total).
func (s *Server) ConnectionsRejected() int64 { return s.mConnReject.Value() }

// NumSubscriptions reports the number of live subscriptions (across all
// connections; several may share one compiled machine query).
func (s *Server) NumSubscriptions() int { return s.subs.Subscriptions() }

// NumUniqueQueries reports the number of distinct compiled machine queries
// serving those subscriptions (plus pinned boot filters).
func (s *Server) NumUniqueQueries() int { return s.subs.UniqueQueries() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) registerMetrics() {
	xpushstream.RegisterMetrics(s.reg, "xpush", xpushstream.StatsFunc(func() xpushstream.Stats {
		return s.cur.Load().stats()
	}))
	s.mPublishes = s.reg.Counter("xpushserve_publishes_total", "documents published to the broker")
	s.mPublishErrs = s.reg.Counter("xpushserve_publish_errors_total", "rejected or failed publishes")
	s.mDeliveries = s.reg.Counter("xpushserve_deliveries_total", "DELIVER frames written to subscribers")
	s.mConnReject = s.reg.Counter("xpushserve_connections_rejected_total", "connections refused by the max-connections limit")
	// Short-prefix alias: load harnesses and dashboards watch the xpush_*
	// namespace, and reconnect-storm scenarios need rejections observable
	// without knowing the server binary's metric prefix.
	s.reg.CounterFunc("xpush_conns_rejected_total", "connections refused by the max-connections limit", func() int64 {
		return s.mConnReject.Value()
	})
	s.mDropped = map[Policy]*obs.Counter{}
	for _, p := range []Policy{DropOldest, DropNewest, Block, Disconnect} {
		name := "xpushserve_dropped_" + strings.ReplaceAll(string(p), "-", "_") + "_total"
		s.mDropped[p] = s.reg.Counter(name, "deliveries dropped under the "+string(p)+" backpressure policy")
	}
	s.reg.CounterFunc("xpushserve_dropped_total", "deliveries dropped across all backpressure policies", func() int64 {
		var n int64
		for _, c := range s.mDropped {
			n += c.Value()
		}
		return n
	})
	s.reg.GaugeFunc("xpushserve_connections", "open broker connections", func() float64 {
		s.connMu.Lock()
		defer s.connMu.Unlock()
		return float64(len(s.conns))
	})
	s.reg.GaugeFunc("xpushserve_subscriptions", "bound subscriber filters", func() float64 {
		return float64(s.subs.Subscriptions())
	})
	s.reg.GaugeFunc("xpush_workload_unique_queries", "distinct compiled machine queries in the dedup registry", func() float64 {
		return float64(s.subs.UniqueQueries())
	})
	s.reg.GaugeFunc("xpush_workload_subscriptions", "live subscriptions across the dedup registry's fan-out sets", func() float64 {
		return float64(s.subs.Subscriptions())
	})
	s.reg.CounterFunc("xpush_workload_dedup_hits_total", "subscriptions that reused an already-compiled machine query", func() int64 {
		return int64(s.subs.Hits())
	})
	s.reg.GaugeFunc("xpush_workload_subsumed_pairs", "filter pairs the Theorem 6.1 analysis proves subsumed among unique queries (-1 = workload too large to analyze)", s.subsumedPairs)
	s.reg.CounterFunc("xpushserve_consolidations_total", "engine-layer consolidations applied on the swap path", s.consolidations.Load)
	s.reg.GaugeFunc("xpushserve_queue_depth", "queued deliveries summed over subscribers", func() float64 {
		s.connMu.Lock()
		defer s.connMu.Unlock()
		n := 0
		for cn := range s.conns {
			n += cn.queueDepth()
		}
		return float64(n)
	})
	s.reg.SummaryFunc("xpushserve_delivery_latency_seconds",
		"publish-to-DELIVER-write latency quantiles", []float64{0.5, 0.9, 0.99},
		s.deliverLat.Snapshot)
	s.reg.HistogramFunc("xpushserve_delivery_latency_histogram_seconds",
		"publish-to-DELIVER-write latency (log buckets)", s.deliverLat.Snapshot)
	// Control-plane stall instrumentation: subscribe/unsubscribe round-trip
	// handling time (frame parse through reply write) plus the consolidation
	// gauge/histogram, so the ROADMAP stall bottlenecks are measurable.
	s.reg.SummaryFunc("xpushserve_subscribe_latency_seconds",
		"SUBSCRIBE round-trip handling latency quantiles (includes durable subscribes)", []float64{0.5, 0.9, 0.99},
		s.subLat.Snapshot)
	s.reg.HistogramFunc("xpushserve_subscribe_latency_histogram_seconds",
		"SUBSCRIBE round-trip handling latency (log buckets)", s.subLat.Snapshot)
	s.reg.SummaryFunc("xpushserve_unsubscribe_latency_seconds",
		"UNSUBSCRIBE round-trip handling latency quantiles", []float64{0.5, 0.9, 0.99},
		s.unsubLat.Snapshot)
	s.reg.HistogramFunc("xpushserve_unsubscribe_latency_histogram_seconds",
		"UNSUBSCRIBE round-trip handling latency (log buckets)", s.unsubLat.Snapshot)
	s.reg.GaugeFunc("xpushserve_consolidation_in_progress",
		"workload consolidations currently recompiling on the swap path", func() float64 {
			return float64(s.consolidating.Load())
		})
	s.reg.SummaryFunc("xpushserve_consolidation_duration_seconds",
		"duration of each workload consolidation recompile", []float64{0.5, 0.9, 0.99},
		s.consolidateLat.Snapshot)
	s.reg.HistogramFunc("xpushserve_consolidation_duration_histogram_seconds",
		"duration of each workload consolidation recompile (log buckets)", s.consolidateLat.Snapshot)
	if s.prof != nil {
		s.registerProfilerMetrics()
	}
	if s.tracer.Enabled() {
		s.reg.CounterFunc("xpushserve_traces_started_total", "document traces begun (sampled or slow-candidate)", func() int64 {
			return s.tracer.Stats().Started
		})
		s.reg.CounterFunc("xpushserve_traces_kept_total", "document traces retained in a ring", func() int64 {
			return s.tracer.Stats().Kept
		})
		s.reg.CounterFunc("xpushserve_traces_slow_total", "document traces kept by the slow-outlier tail capture", func() int64 {
			return s.tracer.Stats().Slow
		})
	}
	obs.RegisterProcessMetrics(s.reg)
	if s.wal != nil {
		s.registerDurableMetrics()
	}
}

// ---------------------------------------------------------------------------
// Control plane: the dedup registry + copy-on-write workload swaps.

// subscribe registers one filter for cn and returns its subscription id
// (ids are never reused). The filter is canonicalized and looked up in the
// dedup registry: when an equivalent filter is already compiled, the
// subscription only joins its fan-out set — no engine derivation, no core
// swap. Only the first subscription to a new canonical filter compiles a
// machine query (and only the last release frees it). Durable filters are
// excluded from queue fan-out: the owner's WAL pump delivers them (see
// subscribeDurable).
func (s *Server) subscribe(cn *conn, query string, durable bool) (uint64, error) {
	canon, err := xpath.Canonicalize(query)
	if err != nil {
		return 0, fmt.Errorf("server: %w", err)
	}
	s.ctl.Lock()
	defer s.ctl.Unlock()
	if s.draining.Load() {
		return 0, errDraining
	}
	if !s.cfg.DedupDisabled {
		if key, ok := s.subs.Resolve(canon); ok {
			// Dedup hit: the canonical filter is already a machine query.
			subID, _ := s.subs.Subscribe(key, cn, durable)
			return subID, nil
		}
	}
	cur := s.cur.Load()
	var derived *xpushstream.Engine
	if s.cfg.Backend == BackendEngine {
		derived, err = cur.engine.WithQueries([]string{canon})
		if err != nil {
			return 0, err
		}
	}
	canons := append(append(make([]string, 0, len(cur.canon)+1), cur.canon...), canon)
	removed := append(append(make([]bool, 0, len(canons)), cur.removed...), false)
	next, err := s.buildCore(canons, removed, derived)
	if err != nil {
		return 0, err
	}
	key := s.subs.Register(canon, !s.cfg.DedupDisabled)
	idx := len(canons) - 1
	next.keys = append(append(make([]uint64, 0, len(canons)), cur.keys...), key)
	next.keyIdx = make(map[uint64]int, len(cur.keyIdx)+1)
	for k, v := range cur.keyIdx {
		next.keyIdx[k] = v
	}
	next.keyIdx[key] = idx
	subID, _ := s.subs.Subscribe(key, cn, durable)
	s.markAnalysisDirty()
	s.cur.Store(s.maybeConsolidate(next))
	return subID, nil
}

// unsubscribe detaches one subscription; only the owning connection may
// remove it. The machine query is released (WithoutQuery + swap) only when
// the last subscription sharing it is gone.
func (s *Server) unsubscribe(cn *conn, id uint64) error {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	key, last, err := s.subs.Unsubscribe(id, cn)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if last {
		s.releaseKeys([]uint64{key})
	}
	return nil
}

// unsubscribeConn detaches every subscription held by a departing
// connection, releasing the machine queries that lost their last rider.
func (s *Server) unsubscribeConn(cn *conn) {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	if released := s.subs.UnsubscribeOwner(cn); len(released) > 0 {
		s.releaseKeys(released)
	}
}

// releaseKeys removes the machine queries behind fully-released registry
// keys and swaps in the next core. Callers hold ctl; the registry entries
// are already gone, so on a rebuild error the old core is kept — its extra
// compiled filters still match, but fan-out finds no subscribers and skips
// them (they are reaped by a later successful swap or consolidation).
func (s *Server) releaseKeys(keys []uint64) {
	cur := s.cur.Load()
	next, err := s.coreWithoutKeys(cur, keys)
	if err != nil {
		s.logf("release queries: %v", err)
		return
	}
	s.markAnalysisDirty()
	s.cur.Store(s.maybeConsolidate(next))
}

// coreWithoutKeys builds the next core with the given registry keys'
// filters removed. The engine backend masks them copy-on-write; the pool
// and sharded backends recompile the compacted workload.
func (s *Server) coreWithoutKeys(cur *core, keys []uint64) (*core, error) {
	if s.cfg.Backend == BackendEngine {
		derived := cur.engine
		removed := append([]bool(nil), cur.removed...)
		ks := append([]uint64(nil), cur.keys...)
		keyIdx := make(map[uint64]int, len(cur.keyIdx))
		for k, v := range cur.keyIdx {
			keyIdx[k] = v
		}
		for _, key := range keys {
			idx, ok := keyIdx[key]
			if !ok {
				continue
			}
			var err error
			derived, err = derived.WithoutQuery(idx)
			if err != nil {
				return nil, err
			}
			removed[idx] = true
			ks[idx] = deadKey
			delete(keyIdx, key)
		}
		c := &core{canon: cur.canon, keys: ks, removed: removed, keyIdx: keyIdx, engine: derived}
		return c, nil
	}
	// Recompiling backends: compact the workload instead of masking.
	drop := make(map[uint64]bool, len(keys))
	for _, key := range keys {
		drop[key] = true
	}
	var canon []string
	var ks []uint64
	for i, key := range cur.keys {
		if cur.removed[i] || drop[key] {
			continue
		}
		canon = append(canon, cur.canon[i])
		ks = append(ks, key)
	}
	next, err := s.buildCore(canon, make([]bool, len(canon)), nil)
	if err != nil {
		return nil, err
	}
	next.keys = ks
	next.keyIdx = make(map[uint64]int, len(ks))
	for i, key := range ks {
		next.keyIdx[key] = i
	}
	return next, nil
}

// maybeConsolidate applies engine-layer consolidation on the swap path when
// the copy-on-write derivation chain has accumulated enough layers or
// removed slots: the whole live workload is recompiled into one machine and
// the registry keys are remapped to the compacted indexes. Without this,
// subscribe/unsubscribe churn grows the layer list and the removed mask
// forever, and every published document pays for the dead weight.
func (s *Server) maybeConsolidate(c *core) *core {
	if c.engine == nil {
		return c
	}
	maxLayers, maxRemoved := s.cfg.consolidateLayers(), s.cfg.consolidateRemoved()
	nRemoved := len(c.removed) - c.liveQueries()
	if (maxLayers <= 0 || c.engine.NumLayers() <= maxLayers) &&
		(maxRemoved <= 0 || nRemoved <= maxRemoved) {
		return c
	}
	// The recompile below runs inline on the subscribe/unsubscribe swap
	// path and is the source of the multi-second SUBSCRIBE stalls ROADMAP
	// item 3 documents; the in-progress gauge and duration histogram make
	// the stall attributable from metrics alone.
	s.consolidating.Add(1)
	t0 := time.Now()
	e, mapping, err := c.engine.Consolidated()
	s.consolidateLat.Observe(time.Since(t0).Seconds())
	s.consolidating.Add(-1)
	if err != nil {
		s.logf("consolidate: %v", err)
		return c
	}
	n := &core{
		canon:   make([]string, e.NumQueries()),
		keys:    make([]uint64, e.NumQueries()),
		removed: make([]bool, e.NumQueries()),
		keyIdx:  make(map[uint64]int, e.NumQueries()),
		engine:  e,
	}
	for old, idx := range mapping {
		if idx < 0 {
			continue
		}
		n.canon[idx] = c.canon[old]
		n.keys[idx] = c.keys[old]
		n.keyIdx[n.keys[idx]] = idx
	}
	s.consolidations.Add(1)
	s.logf("consolidated workload: %d layers, %d removed slots -> 1 layer, %d filters",
		c.engine.NumLayers(), nRemoved, e.NumQueries())
	return n
}

// markAnalysisDirty invalidates the cached subsumption-pair metric after
// the unique workload changed.
func (s *Server) markAnalysisDirty() {
	s.anMu.Lock()
	s.anDirty = true
	s.anMu.Unlock()
}

// analyzeMaxQueries bounds the quadratic subsumption analysis behind the
// xpush_workload_subsumed_pairs gauge; larger unique workloads report -1.
const analyzeMaxQueries = 512

// subsumedPairs returns the number of ordered filter pairs (i ⇒ j) among
// the unique queries where the Theorem 6.1 analysis proves subsumption —
// the headroom a subsumption-aware sharing layer could still exploit beyond
// exact equivalence. Cached until the unique workload changes.
func (s *Server) subsumedPairs() float64 {
	s.anMu.Lock()
	defer s.anMu.Unlock()
	if !s.anDirty {
		return s.anPairs
	}
	s.anDirty = false
	canons := s.subs.Canons()
	if len(canons) > analyzeMaxQueries {
		s.anPairs = -1
		return s.anPairs
	}
	filters := make([]*xpath.Filter, 0, len(canons))
	for _, q := range canons {
		f, err := xpath.Parse(q)
		if err != nil {
			continue
		}
		filters = append(filters, f)
	}
	a, err := afa.Compile(filters)
	if err != nil {
		s.anPairs = -1
		return s.anPairs
	}
	s.anPairs = float64(a.AnalyzeQueries().SubsumedPairs)
	return s.anPairs
}

// ---------------------------------------------------------------------------
// Data plane.

// publish filters one document on the current workload generation and fans
// the matches out to subscriber queues. It returns the matched-subscription
// count (a boot-pinned filter with no subscribers counts once). On a
// WAL-backed server the document is appended to the log (and the append is
// durable per the fsync policy) before anything else — a failed append
// rejects the publish, so every accepted document is replayable.
//
// remoteID is the trace id carried on a FrameTraceFlag-marked publish (0
// for the plain frames): the upstream hop (an xpushgate) already sampled
// this document, so the node traces it unconditionally under the carried id
// and the two hops stitch into one trace.
func (s *Server) publish(doc []byte, remoteID uint64) (int, error) {
	if s.draining.Load() {
		s.mPublishErrs.Inc()
		return 0, errDraining
	}
	// tc is nil for untraced documents — the common case, and the one the
	// zero-allocation guarantee covers; every span call below is a nil
	// no-op then. The publish path holds one trace reference, released by
	// the deferred Finish; each enqueued delivery takes another, so the
	// trace completes (and its total latency is measured) at the last
	// DELIVER write, not when publish returns.
	tc := s.beginPublishTrace(remoteID)
	defer tc.Finish()
	tc.SetAttr(trace.Root, "doc_bytes", int64(len(doc)))
	if s.wal != nil {
		wspan := tc.StartSpan("wal_append", trace.Root)
		var err error
		if tl, ok := s.wal.(docLogTraced); ok {
			_, err = tl.AppendTraced(doc, tc, wspan)
		} else {
			_, err = s.wal.Append(doc)
		}
		tc.EndSpan(wspan)
		if err != nil {
			s.mPublishErrs.Inc()
			return 0, fmt.Errorf("server: wal append: %w", err)
		}
		// Wake the durable pumps parked at the old tail once the fan-out
		// below has run (they deliver independently of the queues).
		defer s.walBroadcast()
	}
	c, matches, err := s.filter(doc, tc)
	if err != nil {
		s.mPublishErrs.Inc()
		return 0, err
	}
	s.mPublishes.Inc()
	return s.fanout(c, matches, doc, tc), nil
}

// beginPublishTrace starts the publish trace: locally sampled for direct
// publishes, unconditional under the carried id for remote-traced ones.
func (s *Server) beginPublishTrace(remoteID uint64) *trace.Ctx {
	if remoteID != 0 {
		return s.tracer.BeginRemote("publish", remoteID, time.Now())
	}
	return s.tracer.Begin("publish")
}

// filter runs one document through the current workload generation and
// returns that generation plus the matched filter ids.
func (s *Server) filter(doc []byte, tc *trace.Ctx) (*core, []int, error) {
	if cc := s.cur.Load(); cc.concurrent() {
		matches, err := cc.filterDocument(doc, tc, trace.Root)
		return cc, matches, err
	}
	lspan := tc.StartSpan("publish_lock", trace.Root)
	s.pubMu.Lock()
	tc.EndSpan(lspan)
	c := s.cur.Load() // reload under the lock: always the freshest generation
	matches, err := c.filterDocument(doc, tc, trace.Root)
	s.pubMu.Unlock()
	return c, matches, err
}

// fanout resolves matched engine indexes through the dedup registry's
// fan-out sets and enqueues one delivery per matched subscriber. c must be
// the generation the matches were computed on: its keys column translates
// that generation's engine indexes to stable registry keys, so a match
// computed on an older core still routes correctly after consolidation.
// The returned count is the number of matched subscriptions (pinned boot
// filters with no subscribers count once each — the pre-dedup publish
// contract).
func (s *Server) fanout(c *core, matches []int, doc []byte, tc *trace.Ctx) int {
	if len(matches) == 0 {
		return 0
	}
	now := time.Now()
	keys := make([]uint64, 0, len(matches))
	for _, m := range matches {
		keys = append(keys, c.keys[m])
	}
	// Group the matched subscription ids by owning subscriber; each
	// subscriber gets one delivery per document regardless of how many of
	// its subscriptions matched.
	// Per-query cost attribution, traced documents only: the filter span's
	// duration and machine telemetry are charged to every matched key, and
	// each fanned-out subscription below increments its key's fan-out count.
	// Untraced documents (tc == nil) never touch the profiler.
	if tc != nil && s.prof != nil {
		canons := make([]string, 0, len(matches))
		for _, m := range matches {
			canons = append(canons, c.canon[m])
		}
		durNS, states, _ := tc.SpanCost("filter", "states_created")
		s.prof.observeFilter(keys, canons, durNS, states)
	}
	count := 0
	var single *conn // fast path: all matches belong to one subscriber
	var singleIDs []uint64
	var perConn map[*conn][]uint64
	s.subs.Fanout(keys, func(key uint64, _ bool, nsubs int, subID uint64, owner *conn, durable bool) {
		count++
		if tc != nil && s.prof != nil {
			s.prof.observeFanout(key, 1)
		}
		if nsubs == 0 || durable {
			// Pinned boot filter (no riders), or a durable subscription
			// delivered by the owner's WAL pump.
			return
		}
		switch {
		case single == nil && perConn == nil:
			single = owner
			singleIDs = append(singleIDs, subID)
		case perConn == nil && owner == single:
			singleIDs = append(singleIDs, subID)
		default:
			if perConn == nil {
				perConn = map[*conn][]uint64{single: singleIDs}
				single = nil
			}
			perConn[owner] = append(perConn[owner], subID)
		}
	})
	if single != nil {
		s.enqueue(single, delivery{doc: doc, filters: singleIDs, enq: now, tc: tc})
	}
	for owner, ids := range perConn {
		s.enqueue(owner, delivery{doc: doc, filters: ids, enq: now, tc: tc})
	}
	return count
}

// publishAsyncStaged completes one pipelined publish whose WAL append was
// already staged into a group-commit batch (pend; nil on a non-WAL server
// or when the log has no async seam — then the append runs here). The
// document is filtered FIRST and the batch outcome awaited after, so the
// filter work of consecutive pipelined publishes overlaps the shared batch
// fsync instead of serializing behind it.
func (s *Server) publishAsyncStaged(doc []byte, pend PendingAppend, remoteID uint64) (int, error) {
	tc := s.beginPublishTrace(remoteID)
	defer tc.Finish()
	tc.SetAttr(trace.Root, "doc_bytes", int64(len(doc)))
	if s.wal != nil && pend == nil {
		wspan := tc.StartSpan("wal_append", trace.Root)
		var err error
		if tl, ok := s.wal.(docLogTraced); ok {
			_, err = tl.AppendTraced(doc, tc, wspan)
		} else {
			_, err = s.wal.Append(doc)
		}
		tc.EndSpan(wspan)
		if err != nil {
			s.mPublishErrs.Inc()
			return 0, fmt.Errorf("server: wal append: %w", err)
		}
		defer s.walBroadcast()
	}
	c, matches, ferr := s.filter(doc, tc)
	if pend != nil {
		wspan := tc.StartSpan("wal_append", trace.Root)
		_, aerr := pend.Wait()
		tc.EndSpan(wspan)
		if bs, ok := pend.(interface{ BatchSize() int }); ok {
			tc.SetAttr(wspan, "batch_size", int64(bs.BatchSize()))
		}
		if aerr != nil {
			// The publish is rejected even though it was filtered: the
			// document is not durable, so fanning it out would deliver a
			// document that a crash could un-accept.
			s.mPublishErrs.Inc()
			return 0, fmt.Errorf("server: wal append: %w", aerr)
		}
		defer s.walBroadcast()
	}
	if ferr != nil {
		s.mPublishErrs.Inc()
		return 0, ferr
	}
	s.mPublishes.Inc()
	return s.fanout(c, matches, doc, tc), nil
}

func (s *Server) enqueue(cn *conn, d delivery) {
	q := cn.queue()
	if q == nil {
		return // subscriber is already tearing down
	}
	// The delivery holds a trace reference until the DELIVER write (or the
	// drop point that discards it — every queue.push exit path accounts for
	// it, see delivery.release).
	d.tc.Ref()
	if q.push(d) {
		s.logf("disconnecting slow subscriber %s (policy=%s)", cn.nc.RemoteAddr(), s.cfg.Policy)
		cn.close()
	}
}

// ---------------------------------------------------------------------------
// Connections.

type conn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	mu        sync.Mutex
	q         *queue
	nsubs     int
	deliverWG sync.WaitGroup

	async *asyncPub // guarded by mu; lazily created on first PublishAsync

	// Durable state (zero unless the client sent SubscribeDurable).
	durName  string // guarded by mu; the cursor identity this conn owns
	resume   uint64 // guarded by mu; offset the pump started from
	pumpOn   bool   // guarded by mu
	pumpStop chan struct{}
	pumpOnce sync.Once
	pumpWG   sync.WaitGroup
	pumpOff  atomic.Uint64 // next offset the pump will replay (lag gauge)
	acked    atomic.Uint64 // persisted cursor (monotonic)

	// Per-pump replay throughput (exported per durable name): log records
	// the pump has read and re-filtered, and DeliverAt frames it wrote.
	pumpScanned   atomic.Int64
	pumpDelivered atomic.Int64

	closeOnce sync.Once
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.connMu.Unlock()
			s.mConnReject.Inc()
			WriteFrame(nc, FrameErr, []byte("server: connection limit reached"))
			nc.Close()
			continue
		}
		cn := &conn{s: s, nc: nc, br: bufio.NewReaderSize(nc, 64<<10), bw: bufio.NewWriterSize(nc, 64<<10)}
		s.conns[cn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			cn.serve()
			s.connMu.Lock()
			delete(s.conns, cn)
			s.connMu.Unlock()
		}()
	}
}

// serve runs one connection's frame loop until error or close.
func (s *Server) maxPayload() int { return s.cfg.maxDocBytes() }

// healthStatus backs /healthz: not-ok while draining, and degraded when the
// WAL has latched a persistent storage failure (appends fail fast then —
// the broker answers but cannot accept durable publishes).
func (s *Server) healthStatus() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if h, ok := s.wal.(docLogHealth); ok {
		if err := h.Failed(); err != nil {
			return false, "degraded: " + err.Error()
		}
	}
	return true, "ok"
}

func (cn *conn) serve() {
	defer cn.teardown()
	s := cn.s
	for {
		if s.cfg.ReadTimeout > 0 && !cn.hasSubs() {
			cn.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		} else {
			cn.nc.SetReadDeadline(time.Time{})
		}
		f, err := ReadFrame(cn.br, s.maxPayload())
		if err != nil {
			var big *ErrFrameTooLarge
			if errors.As(err, &big) {
				// The oversized payload was not consumed; the stream is
				// desynchronized. Report and close.
				cn.writeFrame(FrameErr, []byte(big.Error()))
			}
			return
		}
		typ := f.Type
		var remoteID uint64
		if typ&FrameTraceFlag != 0 {
			// A FrameTraceFlag-marked publish carries the upstream hop's
			// trace id before its normal payload; strip it and dispatch on
			// the base type. The flag is only defined for the publish
			// frames — anything else falls through to the unknown-type arm.
			switch base := typ &^ FrameTraceFlag; base {
			case FramePublish, FramePublishAsync:
				var terr error
				remoteID, f.Payload, terr = SplitTracedPayload(f.Payload)
				if terr != nil {
					cn.writeFrame(FrameErr, []byte(terr.Error()))
					return
				}
				typ = base
			}
		}
		switch typ {
		case FramePing:
			if cn.writeFrame(FramePong, nil) != nil {
				return
			}
		case FrameSubscribe:
			// Bind the queue before the new workload generation is
			// published, so a publish racing with this subscribe never
			// fans out to a queueless subscriber.
			cn.ensureQueue()
			t0 := time.Now()
			id, err := s.subscribe(cn, string(f.Payload), false)
			werr := cn.reply(id, err)
			s.subLat.Observe(time.Since(t0).Seconds())
			if werr != nil {
				return
			}
			if err == nil {
				cn.mu.Lock()
				cn.nsubs++
				cn.mu.Unlock()
			}
		case FrameSubscribeDurable:
			t0 := time.Now()
			name, xpath, err := ParseSubscribeDurablePayload(f.Payload)
			var id, resume uint64
			if err == nil {
				id, resume, err = s.subscribeDurable(cn, name, xpath)
			}
			if err != nil {
				werr := cn.writeFrame(FrameErr, []byte(err.Error()))
				s.subLat.Observe(time.Since(t0).Seconds())
				if werr != nil {
					return
				}
				continue
			}
			werr := cn.writeFrame(FrameOK, AppendUint64(AppendUint64(nil, id), resume))
			s.subLat.Observe(time.Since(t0).Seconds())
			if werr != nil {
				return
			}
			cn.mu.Lock()
			cn.nsubs++
			cn.mu.Unlock()
		case FrameAck:
			off, err := ParseUint64(f.Payload)
			if err != nil {
				// A malformed ack is a protocol violation; there is no ack
				// response slot, so report and drop the connection.
				cn.writeFrame(FrameErr, []byte(err.Error()))
				return
			}
			cn.handleAck(off)
		case FrameUnsubscribe:
			t0 := time.Now()
			id, err := ParseUint64(f.Payload)
			if err == nil {
				err = s.unsubscribe(cn, id)
			}
			werr := cn.reply(id, err)
			s.unsubLat.Observe(time.Since(t0).Seconds())
			if werr != nil {
				return
			}
			if err == nil {
				cn.mu.Lock()
				cn.nsubs--
				cn.mu.Unlock()
			}
		case FramePublish:
			n, err := s.publish(f.Payload, remoteID)
			if cn.reply(uint64(n), err) != nil {
				return
			}
		case FramePublishAsync:
			seq, doc, err := ParsePublishAsyncPayload(f.Payload)
			if err != nil {
				// A malformed pipelined publish desynchronizes the ack
				// sequence; report and drop the connection.
				cn.writeFrame(FrameErr, []byte(err.Error()))
				return
			}
			cn.publishAsync(seq, doc, remoteID)
		default:
			// An unknown frame type means the peer speaks a different
			// protocol revision (gate↔node version skew) or is desynchronized;
			// either way subsequent frames are untrustworthy. Name the
			// violation in a terminal PROTO_ERR frame, then close.
			cn.writeFrame(FrameProtoErr, []byte(fmt.Sprintf("server: unknown frame type 0x%02x", f.Type)))
			return
		}
	}
}

// reply writes OK(v) or Err(err).
func (cn *conn) reply(v uint64, err error) error {
	if err != nil {
		return cn.writeFrame(FrameErr, []byte(err.Error()))
	}
	return cn.writeFrame(FrameOK, AppendUint64(nil, v))
}

func (cn *conn) writeFrame(typ byte, payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	if err := WriteFrame(cn.bw, typ, payload); err != nil {
		return err
	}
	return cn.bw.Flush()
}

// writeFrameBuffered writes a frame into the connection's buffered writer
// without flushing; the caller coalesces a burst of frames under one
// flushFrames. Used by the durable pump — the bufio layer still flushes on
// its own when the 64KB buffer fills.
func (cn *conn) writeFrameBuffered(typ byte, payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	return WriteFrame(cn.bw, typ, payload)
}

// flushFrames flushes frames staged by writeFrameBuffered.
func (cn *conn) flushFrames() error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	return cn.bw.Flush()
}

// pumpFlushEvery bounds how many DeliverAt frames the durable pump stages
// between explicit flushes while replaying a backlog.
const pumpFlushEvery = 64

// maxPubAckBatch bounds how many publish outcomes one PubAcks frame
// coalesces.
const maxPubAckBatch = 512

// asyncPub is one connection's pipelined-publish state: sem is the in-flight
// window (acquired by the read loop, so a client overrunning the window is
// paced by TCP backpressure), acks carries publish outcomes to the single
// ack-writer goroutine, which coalesces everything immediately available
// into one PubAcks frame.
type asyncPub struct {
	sem   chan struct{}
	acks  chan PubAck
	wg    sync.WaitGroup // in-flight publish workers
	ackWG sync.WaitGroup // the ack-writer goroutine
}

// ensureAsync lazily creates the pipelined-publish state and its ack writer.
func (cn *conn) ensureAsync() *asyncPub {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.async == nil {
		a := &asyncPub{
			sem:  make(chan struct{}, cn.s.cfg.asyncPublishWindow()),
			acks: make(chan PubAck, cn.s.cfg.asyncPublishWindow()),
		}
		cn.async = a
		a.ackWG.Add(1)
		go cn.ackLoop(a)
	}
	return cn.async
}

// publishAsync runs on the read loop: it stages the document's WAL append
// into the open group-commit batch (keeping the log in frame order for this
// connection) and hands the rest of the publish — filtering, the batch
// wait, fan-out, ack — to a worker, so the read loop is already parsing the
// next frame while this document's batch accumulates. That decoupling is
// what feeds multi-record batches: without it each publish would seal a
// batch of one.
func (cn *conn) publishAsync(seq uint64, doc []byte, remoteID uint64) {
	s := cn.s
	a := cn.ensureAsync()
	a.sem <- struct{}{} // in-flight window: blocks the read loop when full
	if s.draining.Load() {
		s.mPublishErrs.Inc()
		<-a.sem
		a.acks <- PubAck{Seq: seq, Err: errDraining.Error()}
		return
	}
	var pend PendingAppend
	if s.wal != nil {
		if al, ok := s.wal.(docLogAsync); ok {
			pend = al.AppendAsync(doc)
		}
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		defer func() { <-a.sem }()
		n, err := s.publishAsyncStaged(doc, pend, remoteID)
		ack := PubAck{Seq: seq, Matches: uint64(n)}
		if err != nil {
			ack.Err = err.Error()
		}
		a.acks <- ack
	}()
}

// ackLoop is the per-connection ack writer: it blocks for one outcome, then
// drains everything else already queued and writes a single PubAcks frame.
// On a write error the connection is closed but the loop keeps draining so
// publish workers never block on the acks channel.
func (cn *conn) ackLoop(a *asyncPub) {
	defer a.ackWG.Done()
	var batch []PubAck
	var buf []byte
	dead := false
	for ack := range a.acks {
		batch = append(batch[:0], ack)
	fill:
		for len(batch) < maxPubAckBatch {
			select {
			case more, ok := <-a.acks:
				if !ok {
					break fill
				}
				batch = append(batch, more)
			default:
				break fill
			}
		}
		if dead {
			continue
		}
		buf = AppendPubAcksPayload(buf[:0], batch)
		if cn.writeFrame(FramePubAcks, buf) != nil {
			dead = true
			cn.close()
		}
	}
}

// stopAsync waits out in-flight pipelined publishes and stops the ack
// writer. Called from teardown after the read loop has exited, so no new
// publishes can arrive.
func (cn *conn) stopAsync() {
	cn.mu.Lock()
	a := cn.async
	cn.mu.Unlock()
	if a == nil {
		return
	}
	a.wg.Wait()
	close(a.acks)
	a.ackWG.Wait()
}

func (cn *conn) hasSubs() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.nsubs > 0
}

// queue returns the delivery queue, nil if never subscribed.
func (cn *conn) queue() *queue {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.q
}

func (cn *conn) queueDepth() int {
	if q := cn.queue(); q != nil {
		return q.depth()
	}
	return 0
}

// ensureQueue lazily creates the delivery queue and its consumer goroutine.
func (cn *conn) ensureQueue() *queue {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.q == nil {
		s := cn.s
		cn.q = newQueue(s.cfg.QueueDepth, s.cfg.Policy, s.cfg.blockDeadline(), s.mDropped[s.cfg.Policy])
		cn.deliverWG.Add(1)
		go func() {
			defer cn.deliverWG.Done()
			cn.q.consume(cn.deliverBatch)
		}()
	}
	return cn.q
}

// deliverBatch writes one DELIVER frame per delivery, all under a single
// writer-lock acquisition and a single flush — every frame ready for this
// subscriber in one queue wakeup shares the syscall instead of paying a
// 64KB-buffer flush each. Returning false aborts the consumer. For a traced
// delivery it records the queue wait and the frame write as spans on the
// subscriber's own render track, stamps the trace id into the payload, and
// releases the delivery's trace reference.
func (cn *conn) deliverBatch(ds []delivery) bool {
	cn.wmu.Lock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	var werr error
	for i := range ds {
		d := &ds[i]
		tc := d.tc
		var traceID uint64
		var wspan trace.SpanID = trace.NoSpan
		if tc != nil {
			traceID = tc.ID
			track := tc.NextTrack()
			qw := tc.AddSpan("queue_wait", trace.Root, tc.Offset(d.enq), tc.Offset(time.Now()))
			tc.SetTrack(qw, track)
			wspan = tc.StartSpan("deliver_write", trace.Root)
			tc.SetTrack(wspan, track)
			tc.SetAttr(wspan, "filters", int64(len(d.filters)))
		}
		if werr == nil {
			payload := AppendDeliverPayloadTrace(make([]byte, 0, 12+8*len(d.filters)+len(d.doc)), d.filters, d.doc, traceID)
			werr = WriteFrame(cn.bw, FrameDeliver, payload)
		}
		tc.EndSpan(wspan)
	}
	if werr == nil {
		werr = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	now := time.Now()
	for i := range ds {
		ds[i].tc.Finish()
		if werr == nil {
			cn.s.deliverLat.Observe(now.Sub(ds[i].enq).Seconds())
		}
	}
	if werr != nil {
		return false
	}
	cn.s.mDeliveries.Add(int64(len(ds)))
	return true
}

// beginDrain stops the queue consumer after a final flush (graceful
// shutdown); the connection itself stays open until Shutdown closes it.
func (cn *conn) beginDrain() {
	if q := cn.queue(); q != nil {
		q.close()
	}
}

// close tears the connection down immediately (Disconnect policy, server
// close).
func (cn *conn) close() {
	cn.closeOnce.Do(func() { cn.nc.Close() })
}

// teardown runs when the frame loop exits: settle in-flight pipelined
// publishes, unbind filters, flush and stop the delivery consumer, close
// the socket, stop the WAL pump (the closed socket unsticks a pump blocked
// in a frame write), release the durable name.
func (cn *conn) teardown() {
	cn.stopAsync()
	cn.s.unsubscribeConn(cn)
	if q := cn.queue(); q != nil {
		q.close()
		cn.deliverWG.Wait()
		// A push racing with close can land in the buffered channel after
		// the consumer exits; release those so their traces complete.
		q.drainRelease()
	}
	cn.close()
	cn.stopPump()
	cn.s.releaseDurable(cn)
}

// ---------------------------------------------------------------------------
// Checkpoints and shutdown.

// Checkpoint writes a workload snapshot (engine backend only) so the next
// boot starts with a warm machine. The write happens under the publish
// lock against an in-memory buffer; disk I/O is outside the lock.
func (s *Server) Checkpoint() error {
	if s.cfg.SnapshotPath == "" {
		return fmt.Errorf("server: no SnapshotPath configured")
	}
	c := s.cur.Load()
	if c.engine == nil {
		return fmt.Errorf("server: checkpoints require the engine backend")
	}
	var buf bytes.Buffer
	s.pubMu.Lock()
	err := c.engine.WriteWorkloadSnapshot(&buf)
	s.pubMu.Unlock()
	if err != nil {
		return err
	}
	return xpushstream.WriteFileAtomic(s.cfg.SnapshotPath, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	})
}

func (s *Server) checkpointLoop() {
	defer s.ckWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				s.logf("checkpoint: %v", err)
			}
		case <-s.ckStop:
			return
		}
	}
}

// Shutdown drains the broker gracefully: stop accepting connections and
// publishes, flip /healthz to not-ready, flush every subscriber's queued
// deliveries, then close connections. ctx bounds the flush; a final
// checkpoint is written when SnapshotPath is configured. Shutdown returns
// ctx.Err() if the drain deadline expired with deliveries still queued.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()
	s.closeOne.Do(func() { close(s.ckStop) })
	s.ckWG.Wait()

	s.connMu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.connMu.Unlock()
	for _, cn := range conns {
		cn.beginDrain()
	}
	flushed := make(chan struct{})
	go func() {
		defer close(flushed)
		for _, cn := range conns {
			cn.deliverWG.Wait()
		}
	}()
	var drainErr error
	select {
	case <-flushed:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}
	for _, cn := range conns {
		cn.close()
	}
	s.wg.Wait()
	if s.cfg.SnapshotPath != "" && s.cfg.Backend == BackendEngine {
		if err := s.Checkpoint(); err != nil {
			s.logf("final checkpoint: %v", err)
		}
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.debugSrv != nil {
		s.debugSrv.Close()
	}
	return drainErr
}

// Close shuts the broker down immediately, discarding queued deliveries.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}
