package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/client"
	"repro/server"
)

// TestMaxConnsRejectionExported pins the -max-conns observability surface:
// a rejected connection increments Server.ConnectionsRejected, both metric
// names (xpushserve_connections_rejected_total and its xpush_conns_rejected_total
// alias) carry the count on /metrics, and /debug/machine reports it — so a
// reconnect-storm scenario that trips the limit is visible server-side.
func TestMaxConnsRejectionExported(t *testing.T) {
	srv := startServer(t, server.Config{
		MaxConns:    2,
		MetricsAddr: "127.0.0.1:0",
		DebugAddr:   "127.0.0.1:0",
	})

	c1, err := client.Dial(srv.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(srv.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}

	// The third connection is over the limit: the server answers with an
	// ERR frame and closes, so the first round trip fails.
	c3, err := client.Dial(srv.Addr(), client.Options{Timeout: 5 * time.Second})
	if err == nil {
		if err := c3.Ping(); err == nil {
			t.Fatal("third connection survived past MaxConns=2")
		}
		c3.Close()
	}

	if got := srv.ConnectionsRejected(); got != 1 {
		t.Fatalf("ConnectionsRejected = %d, want 1", got)
	}

	text := scrape(t, srv.MetricsAddr())
	if v := metricValue(t, text, "xpushserve_connections_rejected_total"); v != 1 {
		t.Fatalf("xpushserve_connections_rejected_total = %g, want 1", v)
	}
	if v := metricValue(t, text, "xpush_conns_rejected_total"); v != 1 {
		t.Fatalf("xpush_conns_rejected_total = %g, want 1", v)
	}

	resp, err := http.Get("http://" + srv.DebugAddr() + "/debug/machine")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		ConnsRejected int64 `json:"conns_rejected"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("unmarshal /debug/machine: %v\n%s", err, body)
	}
	if snap.ConnsRejected != 1 {
		t.Fatalf("/debug/machine conns_rejected = %d, want 1", snap.ConnsRejected)
	}

	// Freeing a slot lets DialRetry recover — the storm-facing path.
	c2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c4, err := client.DialRetry(ctx, srv.Addr(), client.Options{Timeout: 5 * time.Second}, client.Backoff{
		Min:   10 * time.Millisecond,
		Probe: func(c *client.Client) error { return c.Ping() },
	})
	if err != nil {
		t.Fatalf("DialRetry after slot freed: %v", err)
	}
	c4.Close()
}
