package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config configures a Gate.
type Config struct {
	// Addr is the subscriber-facing listen address ("" = 127.0.0.1:0).
	Addr string
	// Nodes is the static cluster membership (xpushserve addresses).
	Nodes []string
	// VirtualNodes is the ring's per-node point count (0 = default).
	VirtualNodes int
	// MetricsAddr, when non-empty, serves /metrics, /healthz and
	// /debug/cluster on that address.
	MetricsAddr string
	// Client configures every node-facing connection (downstream
	// subscription conns and the pool's publish conns). Timeout also bounds
	// a fan-out publish's wait for all node acks (defaulted to 10s).
	Client client.Options
	// Backoff shapes the pool's reconnect schedule.
	Backoff client.Backoff
	// PingInterval is the pool's health-check cadence (0 = default).
	PingInterval time.Duration
	// PublishWindow bounds each subscriber connection's in-flight
	// PUBLISH_ASYNC documents and each node pipeline's window (0 = 256).
	PublishWindow int
	// TraceSample enables the gate's cross-hop trace recorder: one of
	// every N fan-out publishes gets a trace whose id is propagated to
	// every node the document reaches (<= 0 disables).
	TraceSample int
	// TraceSlow additionally keeps any fan-out publish slower than the
	// threshold (0 disables tail capture).
	TraceSlow time.Duration
	// NodeDebug lists the nodes' introspection addresses, parallel to
	// Nodes. /debug/cluster/traces fetches each node's /debug/traces from
	// these to merge node-side spans into the gate's traces; when empty
	// (or mismatched in length) merged traces carry only gate spans.
	NodeDebug []string
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) publishWindow() int {
	if c.PublishWindow > 0 {
		return c.PublishWindow
	}
	return 256
}

func (c *Config) publishTimeout() time.Duration {
	if c.Client.Timeout > 0 {
		return c.Client.Timeout
	}
	return 10 * time.Second
}

// Gate is the cluster ingress: it terminates subscriber connections
// speaking the ordinary framed protocol, routes each subscription to the
// ring owner of its canonical filter text (durable subscriptions by
// durable name), fans publishes out to every node owning at least one live
// filter, merges the nodes' delivery streams back per subscriber, and
// aggregates publish acks so a publish acks only once every owning node
// has. To the client a gate is indistinguishable from one big xpushserve.
type Gate struct {
	cfg  Config
	ring *Ring
	pool *Pool
	ln   net.Listener
	hln  net.Listener
	hsrv *http.Server
	reg  *obs.Registry

	mu     sync.Mutex
	conns  map[*gconn]struct{}
	down   map[string]bool // nodes proven down (OnDown fired, not yet back)
	closed bool
	wg     sync.WaitGroup

	pubs     map[string]*nodePub      // per-node publish plane (fixed keys)
	liveKeys map[string]*atomic.Int64 // per-node live subscription count

	// tracer head-samples fan-out publishes; nil when tracing is off.
	// active indexes in-flight gate publish traces by id so downstream
	// read loops can attach merge-write spans to them (best effort: a
	// delivery arriving after the publish settled records nothing).
	tracer    *trace.Recorder
	nodeDebug map[string]string // node addr -> introspection addr
	traceMu   sync.Mutex
	active    map[uint64]*trace.Ctx

	fanout   *obs.Histogram // nodes per publish fan-out
	subLat   obs.Histogram  // subscriber-visible SUBSCRIBE round-trip seconds
	unsubLat obs.Histogram  // subscriber-visible UNSUBSCRIBE round-trip seconds

	mConns          atomic.Int64
	mSubs           atomic.Int64
	mPublishes      *obs.Counter
	mPublishErrs    *obs.Counter
	mDeliveriesFwd  *obs.Counter
	mAcksFwd        *obs.Counter
	mAcksDropped    *obs.Counter
	mFailovers      *obs.Counter
	mFailoverResubs *obs.Counter
	mFailoverDrops  *obs.Counter
}

// New starts a gate: it builds the ring, starts the node pool, binds the
// subscriber listener (and the metrics listener, if configured), and begins
// accepting. Node connections come up asynchronously; /healthz reports
// degraded until every node is connected.
func New(cfg Config) (*Gate, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g := &Gate{
		cfg:       cfg,
		ring:      ring,
		ln:        ln,
		conns:     map[*gconn]struct{}{},
		down:      map[string]bool{},
		pubs:      map[string]*nodePub{},
		liveKeys:  map[string]*atomic.Int64{},
		tracer:    trace.New(cfg.TraceSample, cfg.TraceSlow),
		nodeDebug: map[string]string{},
		active:    map[uint64]*trace.Ctx{},
		fanout:    &obs.Histogram{},
		reg:       obs.NewRegistry(),
	}
	if len(cfg.NodeDebug) == len(cfg.Nodes) {
		for i, n := range cfg.Nodes {
			if cfg.NodeDebug[i] != "" {
				g.nodeDebug[n] = cfg.NodeDebug[i]
			}
		}
	}
	for _, n := range ring.Nodes() {
		g.liveKeys[n] = &atomic.Int64{}
		g.pubs[n] = newNodePub(n)
	}
	g.registerMetrics()
	g.pool = NewPool(ring.Nodes(), PoolOptions{
		Client:       cfg.Client,
		Backoff:      cfg.Backoff,
		PingInterval: cfg.PingInterval,
		OnUp:         g.onNodeUp,
		OnDown:       g.onNodeDown,
	})
	if cfg.MetricsAddr != "" {
		hln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			g.pool.Close()
			return nil, err
		}
		g.hln = hln
		mux := g.reg.NewMuxWithStatus(g.health)
		mux.HandleFunc("/debug/cluster", g.debugCluster)
		mux.HandleFunc("/debug/cluster/traces", g.debugClusterTraces)
		mux.Handle("/debug/traces", g.tracer.Handler())
		g.hsrv = &http.Server{Handler: mux}
		go g.hsrv.Serve(hln)
	}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the subscriber-facing listen address.
func (g *Gate) Addr() string { return g.ln.Addr().String() }

// MetricsAddr returns the metrics listen address ("" if not configured).
func (g *Gate) MetricsAddr() string {
	if g.hln == nil {
		return ""
	}
	return g.hln.Addr().String()
}

// Ring exposes the gate's ring (for tests and debug tooling).
func (g *Gate) Ring() *Ring { return g.ring }

func (g *Gate) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

func (g *Gate) acceptLoop() {
	defer g.wg.Done()
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			return
		}
		cn := newGconn(g, nc)
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			nc.Close()
			return
		}
		g.conns[cn] = struct{}{}
		g.mu.Unlock()
		g.mConns.Add(1)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			cn.serve()
			g.mu.Lock()
			delete(g.conns, cn)
			g.mu.Unlock()
			g.mConns.Add(-1)
		}()
	}
}

// isDown reports whether node has been proven down. Nodes that have never
// connected are treated as routable: static membership is assumed healthy
// until a live connection to it fails, so the gate can route before the
// pool's first connect completes.
func (g *Gate) isDown(node string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down[node]
}

// onNodeUp runs on the pool's manage goroutine with a freshly probed
// connection: attach the publish pipeline and clear the down mark.
func (g *Gate) onNodeUp(node string, c *client.Client) {
	np := g.pubs[node]
	pipe, err := c.PublishPipelined(g.cfg.publishWindow(), np.onResult)
	if err != nil {
		return // the connection is already dying; the pool will cycle it
	}
	np.attach(c, pipe)
	g.mu.Lock()
	delete(g.down, node)
	g.mu.Unlock()
	g.logf("cluster: node %s up", node)
}

// onNodeDown runs on the pool's manage goroutine after a node's connection
// died: mark it down, fail the publishes pending on it, and replay its
// subscriptions onto the ring's next owners.
func (g *Gate) onNodeDown(node string, err error) {
	g.mu.Lock()
	g.down[node] = true
	closed := g.closed
	conns := make([]*gconn, 0, len(g.conns))
	for cn := range g.conns {
		conns = append(conns, cn)
	}
	g.mu.Unlock()
	g.pubs[node].fail(fmt.Errorf("cluster: node %s down: %w", node, errOr(err)))
	if closed {
		return
	}
	g.mFailovers.Inc()
	g.logf("cluster: node %s down (%v); rerouting subscriptions", node, err)
	for _, cn := range conns {
		cn := cn
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			cn.rerouteNode(node, nil)
		}()
	}
}

func errOr(err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("connection closed")
}

// pubTargets returns the nodes a publish must reach: every node owning at
// least one live filter and not proven down.
func (g *Gate) pubTargets() []string {
	nodes := g.ring.Nodes()
	targets := make([]string, 0, len(nodes))
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range nodes {
		if g.liveKeys[n].Load() > 0 && !g.down[n] {
			targets = append(targets, n)
		}
	}
	return targets
}

// beginPublishTrace starts the gate-hop trace for one fan-out publish.
// remoteID is the trace id carried on the incoming frame (0 = untraced):
// a publisher that already traced the document wins over local sampling,
// so the whole path shares one id.
func (g *Gate) beginPublishTrace(remoteID uint64) *trace.Ctx {
	if remoteID != 0 {
		return g.tracer.BeginRemote("gate_publish", remoteID, time.Now())
	}
	return g.tracer.Begin("gate_publish")
}

// trackTrace indexes an in-flight publish trace so delivery forwarding can
// attach merge-write spans; untrackTrace must run before the publish path's
// Finish so a concurrent traceRef never revives a completed trace.
func (g *Gate) trackTrace(tc *trace.Ctx) {
	g.traceMu.Lock()
	g.active[tc.ID] = tc
	g.traceMu.Unlock()
}

func (g *Gate) untrackTrace(tc *trace.Ctx) {
	g.traceMu.Lock()
	delete(g.active, tc.ID)
	g.traceMu.Unlock()
}

// traceRef resolves a forwarded delivery's trace id to the in-flight gate
// trace, taking a reference the caller must Finish. The map holds only
// traces whose publish path still owns a reference (untrack precedes
// Finish), so the Ref here can never race a final release.
func (g *Gate) traceRef(id uint64) *trace.Ctx {
	if id == 0 {
		return nil
	}
	g.traceMu.Lock()
	tc := g.active[id]
	if tc != nil {
		tc.Ref()
	}
	g.traceMu.Unlock()
	return tc
}

// fanPublish publishes doc to every target node and aggregates: the total
// match count across nodes, and the first per-node error. It blocks until
// all targets ack or the publish timeout expires. remoteID is the trace id
// the subscriber's frame carried (0 = untraced); traced publishes record a
// per-node fan-out span (closed by that node's ack) plus an ack-aggregation
// wait span, and propagate the trace id on every node-bound frame.
func (g *Gate) fanPublish(doc []byte, remoteID uint64) (int, error) {
	targets := g.pubTargets()
	g.fanout.Observe(float64(len(targets)))
	g.mPublishes.Inc()
	tc := g.beginPublishTrace(remoteID)
	tid := remoteID
	if tc != nil {
		tid = tc.ID
		tc.SetAttr(trace.Root, "fanout_nodes", int64(len(targets)))
		g.trackTrace(tc)
		defer func() {
			g.untrackTrace(tc)
			tc.Finish()
		}()
	}
	if len(targets) == 0 {
		// No node owns a live filter: the document matches nothing.
		return 0, nil
	}
	agg := &pubAgg{remaining: len(targets), done: make(chan struct{})}
	for _, node := range targets {
		settle := agg.settle
		if tc != nil {
			// One span per node, on its own track, closed by the node's ack
			// (which arrives on that node connection's read loop).
			sp := tc.StartSpan("fanout "+node, trace.Root)
			tc.SetTrack(sp, tc.NextTrack())
			settle = func(r client.PublishResult) {
				tc.SetAttr(sp, "matches", int64(r.Matches))
				tc.EndSpan(sp)
				agg.settle(r)
			}
		}
		if err := g.pubs[node].publish(doc, tid, settle); err != nil {
			settle(client.PublishResult{Err: err})
		}
	}
	wait := tc.StartSpan("ack_wait", trace.Root)
	t := time.NewTimer(g.cfg.publishTimeout())
	defer t.Stop()
	select {
	case <-agg.done:
		tc.EndSpan(wait)
	case <-t.C:
		tc.EndSpan(wait)
		g.mPublishErrs.Inc()
		return 0, fmt.Errorf("cluster: publish timed out after %v waiting for node acks", g.cfg.publishTimeout())
	}
	agg.mu.Lock()
	defer agg.mu.Unlock()
	if agg.firstErr != nil {
		g.mPublishErrs.Inc()
		return 0, agg.firstErr
	}
	return agg.matches, nil
}

// pubAgg aggregates one fan-out publish's per-node outcomes.
type pubAgg struct {
	mu        sync.Mutex
	remaining int
	matches   int
	firstErr  error
	done      chan struct{}
}

// settle records one node's outcome; callable from node read loops.
func (a *pubAgg) settle(r client.PublishResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.remaining == 0 {
		return
	}
	a.matches += r.Matches
	if r.Err != nil && a.firstErr == nil {
		a.firstErr = r.Err
	}
	a.remaining--
	if a.remaining == 0 {
		close(a.done)
	}
}

// maxOrphanAcks bounds each node's parked-ack map. Orphans normally live
// microseconds (the window between the read loop seeing an ack and
// publish registering its callback), so the cap only bites when acks leak
// — e.g. a node acking sequence numbers the gate never registered. Past
// the cap an arbitrary parked ack is evicted (and counted): the publisher
// it belonged to, if any, times out instead of leaking map entries.
const maxOrphanAcks = 1024

// nodePub is one node's publish plane: the pool connection's pipeline plus
// the callbacks of publishes awaiting that node's ack. Acks may arrive on
// the read loop before the publisher registers its callback (the sequence
// number is only known after Publish returns), so early acks park in
// orphans until the registration catches up.
type nodePub struct {
	node    string
	hist    obs.Histogram // ack latency, seconds
	evicted atomic.Int64  // orphaned acks dropped by the cap

	mu      sync.Mutex
	pipe    *client.Pipeline
	pending map[uint64]*pubWait
	orphans map[uint64]client.PublishResult
}

type pubWait struct {
	cb    func(client.PublishResult)
	start time.Time
}

func newNodePub(node string) *nodePub {
	return &nodePub{
		node:    node,
		pending: map[uint64]*pubWait{},
		orphans: map[uint64]client.PublishResult{},
	}
}

func (np *nodePub) attach(c *client.Client, pipe *client.Pipeline) {
	np.mu.Lock()
	np.pipe = pipe
	np.mu.Unlock()
}

// publish submits doc on the node's pipeline and registers cb for its ack.
// traceID, when non-zero, rides the frame so the node's trace adopts the
// gate's id (the cross-hop merge key).
func (np *nodePub) publish(doc []byte, traceID uint64, cb func(client.PublishResult)) error {
	np.mu.Lock()
	pipe := np.pipe
	np.mu.Unlock()
	if pipe == nil {
		return fmt.Errorf("cluster: node %s not connected", np.node)
	}
	start := time.Now()
	seq, err := pipe.PublishTraced(doc, traceID)
	if err != nil {
		return err
	}
	np.mu.Lock()
	if r, ok := np.orphans[seq]; ok {
		delete(np.orphans, seq)
		np.mu.Unlock()
		np.hist.Observe(time.Since(start).Seconds())
		cb(r)
		return nil
	}
	np.pending[seq] = &pubWait{cb: cb, start: start}
	np.mu.Unlock()
	return nil
}

// onResult runs on the node connection's read loop for every ack.
func (np *nodePub) onResult(r client.PublishResult) {
	np.mu.Lock()
	w, ok := np.pending[r.Seq]
	if ok {
		delete(np.pending, r.Seq)
	} else {
		if len(np.orphans) >= maxOrphanAcks {
			for seq := range np.orphans {
				delete(np.orphans, seq)
				np.evicted.Add(1)
				break
			}
		}
		np.orphans[r.Seq] = r
	}
	np.mu.Unlock()
	if ok {
		np.hist.Observe(time.Since(w.start).Seconds())
		w.cb(r)
	}
}

// fail detaches the pipeline and fails every pending publish, so fan-out
// publishers waiting on a dead node unblock with an error instead of
// timing out.
func (np *nodePub) fail(err error) {
	np.mu.Lock()
	np.pipe = nil
	pending := np.pending
	np.pending = map[uint64]*pubWait{}
	np.orphans = map[uint64]client.PublishResult{}
	np.mu.Unlock()
	for _, w := range pending {
		w.cb(client.PublishResult{Err: err})
	}
}

// health backs /healthz: degraded while any node lacks a live connection.
// The body names every disconnected node, not just the first, so one curl
// tells an operator the full blast radius.
func (g *Gate) health() (bool, string) {
	var down []string
	for _, n := range g.ring.Nodes() {
		if !g.pool.Up(n) {
			down = append(down, n)
		}
	}
	if len(down) > 0 {
		return false, "degraded: nodes not connected: " + strings.Join(down, ", ")
	}
	return true, "ok"
}

func (g *Gate) registerMetrics() {
	r := g.reg
	g.mPublishes = r.Counter("xpushgate_publishes_total", "Documents accepted for fan-out publish.")
	g.mPublishErrs = r.Counter("xpushgate_publish_errors_total", "Fan-out publishes that failed or timed out.")
	g.mDeliveriesFwd = r.Counter("xpushgate_deliveries_forwarded_total", "Delivery frames forwarded from nodes to subscribers.")
	g.mAcksFwd = r.Counter("xpushgate_acks_forwarded_total", "Durable acks forwarded to the owning node.")
	g.mAcksDropped = r.Counter("xpushgate_acks_dropped_total", "Durable acks dropped because their offset was outside the current node's forwarded window (stale after failover).")
	g.mFailovers = r.Counter("xpushgate_failovers_total", "Node-down events that triggered subscription rerouting.")
	g.mFailoverResubs = r.Counter("xpushgate_failover_resubscribes_total", "Subscriptions successfully replayed onto a surviving node.")
	g.mFailoverDrops = r.Counter("xpushgate_failover_dropped_subscriptions_total", "Subscriptions dropped because no surviving node could take them.")
	r.GaugeFunc("xpushgate_connections", "Open subscriber connections.", func() float64 { return float64(g.mConns.Load()) })
	r.GaugeFunc("xpushgate_subscriptions", "Live subscriptions across all subscriber connections.", func() float64 { return float64(g.mSubs.Load()) })
	r.GaugeVecFunc("xpushgate_node_up", "Per-node connectivity (1 = live pool connection).", func() []obs.Labeled {
		nodes := g.ring.Nodes()
		out := make([]obs.Labeled, 0, len(nodes))
		for _, n := range nodes {
			v := 0.0
			if g.pool.Up(n) {
				v = 1
			}
			out = append(out, obs.Labeled{Labels: fmt.Sprintf("node=%q", n), Value: v})
		}
		return out
	})
	r.GaugeVecFunc("xpushgate_node_live_keys", "Per-node live subscription count (publish fan-out skips zero).", func() []obs.Labeled {
		nodes := g.ring.Nodes()
		out := make([]obs.Labeled, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, obs.Labeled{Labels: fmt.Sprintf("node=%q", n), Value: float64(g.liveKeys[n].Load())})
		}
		return out
	})
	r.HistogramFunc("xpushgate_publish_fanout_nodes", "Nodes per publish fan-out (bucket bounds are generic; read _sum/_count for the mean).", g.fanout.Snapshot)
	r.SummaryVecFunc("xpushgate_node_ack_latency_seconds", "Per-node publish ack latency.", nil, func() []obs.LabeledSnapshot {
		nodes := g.ring.Nodes()
		out := make([]obs.LabeledSnapshot, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, obs.LabeledSnapshot{Labels: fmt.Sprintf("node=%q", n), Snap: g.pubs[n].hist.Snapshot()})
		}
		return out
	})
	r.GaugeVecFunc("xpushgate_orphan_acks", "Per-node acks parked awaiting publisher registration (bounded at 1024; overflow evicts).", func() []obs.Labeled {
		nodes := g.ring.Nodes()
		out := make([]obs.Labeled, 0, len(nodes))
		for _, n := range nodes {
			np := g.pubs[n]
			np.mu.Lock()
			v := float64(len(np.orphans))
			np.mu.Unlock()
			out = append(out, obs.Labeled{Labels: fmt.Sprintf("node=%q", n), Value: v})
		}
		return out
	})
	r.CounterFunc("xpushgate_orphan_acks_evicted_total", "Parked acks dropped because a node's orphan map hit its cap.", func() int64 {
		var sum int64
		for _, n := range g.ring.Nodes() {
			sum += g.pubs[n].evicted.Load()
		}
		return sum
	})
	r.SummaryFunc("xpushgate_subscribe_latency_seconds", "Subscriber-visible SUBSCRIBE round-trip latency (includes the node hop).", []float64{0.5, 0.9, 0.99}, g.subLat.Snapshot)
	r.HistogramFunc("xpushgate_subscribe_latency_histogram_seconds", "Subscriber-visible SUBSCRIBE round-trip latency.", g.subLat.Snapshot)
	r.SummaryFunc("xpushgate_unsubscribe_latency_seconds", "Subscriber-visible UNSUBSCRIBE round-trip latency (includes the node hop).", []float64{0.5, 0.9, 0.99}, g.unsubLat.Snapshot)
	r.HistogramFunc("xpushgate_unsubscribe_latency_histogram_seconds", "Subscriber-visible UNSUBSCRIBE round-trip latency.", g.unsubLat.Snapshot)
	if g.tracer.Enabled() {
		r.CounterFunc("xpushgate_traces_started_total", "Fan-out publish traces begun.", func() int64 {
			return g.tracer.Stats().Started
		})
		r.CounterFunc("xpushgate_traces_kept_total", "Fan-out publish traces retained in a ring.", func() int64 {
			return g.tracer.Stats().Kept
		})
	}
}

// debugCluster serves /debug/cluster: per-node health, live-key counts and
// gate totals as JSON.
func (g *Gate) debugCluster(w http.ResponseWriter, req *http.Request) {
	type nodeInfo struct {
		NodeStatus
		LiveKeys   int64       `json:"live_keys"`
		OrphanAcks int         `json:"orphan_acks"`
		AckLatency obs.Summary `json:"ack_latency_seconds"`
	}
	snap := g.pool.Snapshot()
	nodes := make([]nodeInfo, 0, len(snap))
	for _, ns := range snap {
		np := g.pubs[ns.Node]
		np.mu.Lock()
		orphans := len(np.orphans)
		np.mu.Unlock()
		nodes = append(nodes, nodeInfo{
			NodeStatus: ns,
			LiveKeys:   g.liveKeys[ns.Node].Load(),
			OrphanAcks: orphans,
			AckLatency: np.hist.Snapshot().Summary(),
		})
	}
	out := struct {
		Nodes         []nodeInfo `json:"nodes"`
		Connections   int64      `json:"connections"`
		Subscriptions int64      `json:"subscriptions"`
		Failovers     int64      `json:"failovers"`
		VirtualNodes  int        `json:"virtual_nodes"`
	}{nodes, g.mConns.Load(), g.mSubs.Load(), g.mFailovers.Value(), len(g.ring.points) / len(g.ring.nodes)}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// Close stops accepting, tears down every subscriber connection, the node
// pool and the metrics listener, and waits for all gate goroutines.
func (g *Gate) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	conns := make([]*gconn, 0, len(g.conns))
	for cn := range g.conns {
		conns = append(conns, cn)
	}
	g.mu.Unlock()
	g.ln.Close()
	for _, cn := range conns {
		cn.shutdown()
	}
	g.pool.Close()
	if g.hsrv != nil {
		g.hsrv.Close()
	}
	g.wg.Wait()
	return nil
}
