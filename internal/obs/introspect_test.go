package obs

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestQuantileEmptySnapshot(t *testing.T) {
	var s Snapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", s.Mean())
	}
	sum := s.Summary()
	if sum.Count != 0 || sum.P50 != 0 || sum.P99 != 0 || sum.Max != 0 {
		t.Fatalf("empty Summary = %+v", sum)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(3e-6) // all land in the 2µs..4µs bucket
	}
	s := h.Snapshot()
	bounds := BucketBounds()
	lo, hi := bounds[1], bounds[2] // bucket 2 covers (2µs, 4µs]
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v, want within (%v, %v]", q, got, lo, hi)
		}
	}
	// q=1 must interpolate to the top of the occupied range, clamped at Max.
	if got := s.Quantile(1); got > s.Max && s.Max > 0 && got > hi {
		t.Fatalf("Quantile(1) = %v beyond max %v and bound %v", got, s.Max, hi)
	}
}

func TestQuantileExtremes(t *testing.T) {
	var h Histogram
	h.Observe(1e-6)
	h.Observe(1e-3)
	h.Observe(1e-1)
	s := h.Snapshot()
	// q=0: rank 0, first occupied bucket wins, result is at or below its
	// upper bound and never negative.
	q0 := s.Quantile(0)
	if q0 < 0 || q0 > 1e-6 {
		t.Fatalf("Quantile(0) = %v, want within [0, 1e-6]", q0)
	}
	// q=1 must not exceed the recorded max.
	q1 := s.Quantile(1)
	if q1 > s.Max {
		t.Fatalf("Quantile(1) = %v > max %v", q1, s.Max)
	}
	if q1 < 1e-3 {
		t.Fatalf("Quantile(1) = %v, want >= second-highest observation", q1)
	}
	// Monotonic in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotonic: q=%v gives %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(100) // 100s: beyond the ~33.5s top finite bound
	s := h.Snapshot()
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("overflow observation not in +Inf bucket: %v", s.Buckets)
	}
	// The overflow bucket interpolates between the top finite bound and Max.
	bounds := BucketBounds()
	top := bounds[len(bounds)-1]
	if got := s.Quantile(0.5); got < top || got > s.Max {
		t.Fatalf("overflow Quantile(0.5) = %v, want within [%v, %v]", got, top, s.Max)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Fatalf("overflow Quantile(1) = %v, want max %v", got, s.Max)
	}
}

func TestQuantileMergedSnapshots(t *testing.T) {
	var h1, h2 Histogram
	for i := 0; i < 50; i++ {
		h1.Observe(2e-6)
		h2.Observe(2e-3)
	}
	s := h1.Snapshot()
	s.Merge(h2.Snapshot())
	if s.Count != 100 {
		t.Fatalf("merged count = %d", s.Count)
	}
	// Median sits at the boundary between the two populations; p25 must be
	// low, p75 high.
	if lo := s.Quantile(0.25); lo > 1e-5 {
		t.Fatalf("merged Quantile(0.25) = %v, want ~2µs", lo)
	}
	if hi := s.Quantile(0.75); hi < 1e-4 {
		t.Fatalf("merged Quantile(0.75) = %v, want ~2ms", hi)
	}
	// Merging into a zero-value snapshot adopts the other's buckets.
	var empty Snapshot
	empty.Merge(h1.Snapshot())
	if empty.Count != 50 || empty.Quantile(0.5) > 1e-5 {
		t.Fatalf("merge into empty = count %d p50 %v", empty.Count, empty.Quantile(0.5))
	}
}

func TestGaugeVecFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeVecFunc("xpush_test_lag", "per-name lag", func() []Labeled {
		return []Labeled{
			{Labels: `name="a"`, Value: 3},
			{Labels: `name="b"`, Value: 0},
		}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE xpush_test_lag gauge",
		"xpush_test_lag{name=\"a\"} 3",
		"xpush_test_lag{name=\"b\"} 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSummaryVecFunc(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(2e-3)
	}
	r.SummaryVecFunc("xpush_test_node_ack", "per-node ack latency", []float64{0.5, 0.99}, func() []LabeledSnapshot {
		return []LabeledSnapshot{
			{Labels: `node="a:1"`, Snap: h.Snapshot()},
			{Labels: `node="b:2"`, Snap: Snapshot{}},
		}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE xpush_test_node_ack summary",
		`xpush_test_node_ack{node="a:1",quantile="0.5"}`,
		`xpush_test_node_ack{node="a:1",quantile="0.99"}`,
		`xpush_test_node_ack_count{node="a:1"} 100`,
		`xpush_test_node_ack_count{node="b:2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The populated member's median lands in the observed bucket range.
	if !strings.Contains(out, `xpush_test_node_ack_sum{node="a:1"} 0.2`) {
		t.Fatalf("sum not encoded per label set:\n%s", out)
	}
}

func TestGaugeVecFuncEmpty(t *testing.T) {
	r := NewRegistry()
	r.GaugeVecFunc("xpush_empty_vec", "empty family", func() []Labeled { return nil })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE xpush_empty_vec gauge") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if strings.Contains(out, "xpush_empty_vec{") {
		t.Fatalf("empty family emitted samples:\n%s", out)
	}
}

// Registration concurrent with scraping must be race-free (run under -race).
func TestRegistryConcurrentRegistrationAndScrape(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 100; i++ {
				c := r.Counter(fmt.Sprintf("hammer_c_%d_%d", w, i), "")
				c.Inc()
				r.GaugeFunc(fmt.Sprintf("hammer_g_%d_%d", w, i), "", func() float64 { return 1 })
				r.GaugeVecFunc(fmt.Sprintf("hammer_v_%d_%d", w, i), "", func() []Labeled {
					return []Labeled{{Labels: `x="y"`, Value: 1}}
				})
			}
		}(w)
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hammer_c_3_99 1") {
		t.Fatal("final scrape missing registered counter")
	}
}

func TestRuntimeMetricsExported(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	rw := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	out := rw.Body.String()
	for _, want := range []string{
		"go_goroutines",
		"go_heap_objects_bytes",
		"go_gc_pauses_seconds_count",
		"go_sched_latencies_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, out)
		}
	}
	// Goroutine count must be a live positive number.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "go_goroutines ") {
			var v float64
			if _, err := fmt.Sscanf(line, "go_goroutines %g", &v); err != nil || v < 1 {
				t.Fatalf("go_goroutines line %q invalid", line)
			}
			return
		}
	}
	t.Fatal("no go_goroutines sample line")
}

func TestRuntimeHistogramConversion(t *testing.T) {
	s := runtimeHistSnapshot("/sched/latencies:seconds")
	if len(s.Buckets) != numBuckets+1 {
		t.Fatalf("converted snapshot has %d buckets, want %d", len(s.Buckets), numBuckets+1)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	// Unknown names degrade to an empty snapshot, never panic.
	if got := runtimeHistSnapshot("/nonexistent:units"); got.Count != 0 {
		t.Fatalf("unknown metric snapshot = %+v", got)
	}
}
