package afa

// Symbols interns element and attribute labels to dense int32 ids so state
// sets and transition tables work on integers. Attribute labels use the "@"
// prefix convention of the sax package.

// Reserved symbol ids.
const (
	// SymAnyElem is the * wildcard (any element label).
	SymAnyElem int32 = 0
	// SymAnyAttr is the @* wildcard (any attribute label).
	SymAnyAttr int32 = 1
	// SymOtherElem stands for every element label that occurs in no
	// query. All such labels behave identically (only wildcard
	// transitions can fire on them), so mapping them to one symbol lets
	// the lazy transition tables share their entries.
	SymOtherElem int32 = 2
	// SymOtherAttr is the attribute counterpart of SymOtherElem.
	SymOtherAttr int32 = 3
)

// Symbols is an interning table for labels.
type Symbols struct {
	byName map[string]int32
	names  []string
	isAttr []bool
}

// NewSymbols returns a table with the wildcards and unknown-label sentinels
// pre-interned.
func NewSymbols() *Symbols {
	s := &Symbols{byName: make(map[string]int32)}
	s.names = append(s.names, "*", "@*", "⟨elem⟩", "⟨attr⟩")
	s.isAttr = append(s.isAttr, false, true, false, true)
	for i, n := range s.names {
		s.byName[n] = int32(i)
	}
	return s
}

// InputSym maps a SAX event label to the symbol the machine should use:
// known labels map to their interned id; unknown labels collapse to the
// shared sentinel for their node class.
func (s *Symbols) InputSym(label string) int32 {
	if id, ok := s.byName[label]; ok {
		return id
	}
	if len(label) > 0 && label[0] == '@' {
		return SymOtherAttr
	}
	return SymOtherElem
}

// Intern returns the id for a label, creating it if new. Labels beginning
// with '@' are attribute labels.
func (s *Symbols) Intern(label string) int32 {
	if id, ok := s.byName[label]; ok {
		return id
	}
	id := int32(len(s.names))
	s.names = append(s.names, label)
	s.isAttr = append(s.isAttr, len(label) > 0 && label[0] == '@')
	s.byName[label] = id
	return id
}

// Lookup returns the id for a label without creating it; ok is false for
// unknown labels.
func (s *Symbols) Lookup(label string) (int32, bool) {
	id, ok := s.byName[label]
	return id, ok
}

// Name returns the label for an id.
func (s *Symbols) Name(id int32) string { return s.names[id] }

// IsAttr reports whether the id denotes an attribute label (or @*).
func (s *Symbols) IsAttr(id int32) bool { return s.isAttr[id] }

// Len returns the number of interned symbols, wildcards included.
func (s *Symbols) Len() int { return len(s.names) }

// Matches reports whether a transition labeled sym fires on an input label
// in (a concrete element or attribute symbol): exact match, or the
// appropriate wildcard.
func (s *Symbols) Matches(sym, in int32) bool {
	if sym == in {
		return true
	}
	if sym == SymAnyElem {
		return !s.isAttr[in]
	}
	if sym == SymAnyAttr {
		return s.isAttr[in]
	}
	return false
}
