package sax

import (
	"strings"
	"testing"
)

// byteCollector records byte-level events as Events for comparison against
// the pull scanner's output.
type byteCollector struct {
	Events []Event
}

func (c *byteCollector) StartDocument() {
	c.Events = append(c.Events, Event{Kind: StartDocument})
}
func (c *byteCollector) StartElementBytes(name []byte) {
	c.Events = append(c.Events, Event{Kind: StartElement, Name: string(name)})
}
func (c *byteCollector) TextBytes(data []byte) {
	c.Events = append(c.Events, Event{Kind: Text, Data: string(data)})
}
func (c *byteCollector) EndElementBytes(name []byte) {
	c.Events = append(c.Events, Event{Kind: EndElement, Name: string(name)})
}
func (c *byteCollector) EndDocument() {
	c.Events = append(c.Events, Event{Kind: EndDocument})
}

func diffEventStreams(t *testing.T, input string) {
	t.Helper()
	var sc Collector
	strErr := Parse([]byte(input), &sc)
	var bc byteCollector
	byteErr := ParseBytes([]byte(input), &bc)
	if (strErr == nil) != (byteErr == nil) {
		t.Fatalf("acceptance mismatch on %q: scanner err=%v, byte scanner err=%v",
			input, strErr, byteErr)
	}
	// On errors, the event prefixes up to the shorter stream must agree
	// (delivery points differ slightly because the pull scanner queues
	// attribute triples before reporting a later error in the same tag).
	n := len(sc.Events)
	if len(bc.Events) < n {
		n = len(bc.Events)
	}
	if strErr == nil && (len(sc.Events) != len(bc.Events)) {
		t.Fatalf("event count mismatch on %q: scanner %d, byte scanner %d\n%v\n%v",
			input, len(sc.Events), len(bc.Events), sc.Events, bc.Events)
	}
	for i := 0; i < n; i++ {
		if sc.Events[i] != bc.Events[i] {
			t.Fatalf("event %d mismatch on %q:\n scanner: %v\n byte:    %v",
				i, input, sc.Events[i], bc.Events[i])
		}
	}
}

// TestByteScannerMatchesScanner drives both parsers over a corpus covering
// every syntactic feature and requires identical event streams.
func TestByteScannerMatchesScanner(t *testing.T) {
	corpus := []string{
		`<a/>`,
		`<a></a>`,
		`<a c="3"> <b> 4 </b> </a>`,
		`<a><b/><c x="1"/></a>`,
		`<a>&lt;x&gt; &amp; &#65;</a>`,
		`<a>&#x41;&#x1F600;</a>`,
		`<a><![CDATA[1 < 2]]></a>`,
		`<a>pre<![CDATA[mid]]>post</a>`,
		`<a><![CDATA[]]></a>`,
		`<a>one<!-- c -->two</a>`,
		`<?xml version="1.0"?><!-- c --><a/>`,
		`<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b>1</b></a>`,
		`<a>1</a><b>2</b>`,
		`<a x='1&quot;'/>`,
		`<a x="&amp;&lt;">v</a>`,
		"<a>\n  <b> </b>\n</a>",
		`<a x="1" y="2" z="3">mixed<b/>tail</a>`,
		`<root><item id="1"><name>n1</name><price>17</price></item></root>`,
		`<a>text&amp;more&amp;even more</a>`,
		`<a>   </a>`,
		`<a><b>x</b><b>y</b></a>`,
		strings.Repeat("<a>", 40) + "z" + strings.Repeat("</a>", 40),
		// Malformed inputs: acceptance must agree.
		`<a`,
		`</a>`,
		`<a>&bogus;</a>`,
		`<a><b></a></b>`,
		`<a x=1></a>`,
		`<a x></a>`,
		`<a><b>`,
		`text outside`,
		`<a>&#xZZ;</a>`,
		`<a>&toolongentityname;</a>`,
		`<!-- unterminated`,
		`<![CDATA[ orphan ]]>`,
		`<a><![CDATA[ unterminated`,
		strings.Repeat("<a>", 600),
	}
	for _, doc := range corpus {
		diffEventStreams(t, doc)
	}
}

// TestByteScannerReuse checks that one ByteScanner instance parses multiple
// buffers correctly (its buffers are recycled between calls).
func TestByteScannerReuse(t *testing.T) {
	var s ByteScanner
	docs := []string{
		`<a b="1">x&amp;y</a>`,
		`<c><d/></c>`,
		`<e>plain</e>`,
	}
	for _, doc := range docs {
		var sc Collector
		if err := Parse([]byte(doc), &sc); err != nil {
			t.Fatal(err)
		}
		var bc byteCollector
		if err := s.Parse([]byte(doc), &bc); err != nil {
			t.Fatalf("%q: %v", doc, err)
		}
		if len(sc.Events) != len(bc.Events) {
			t.Fatalf("%q: event count %d vs %d", doc, len(sc.Events), len(bc.Events))
		}
		for i := range sc.Events {
			if sc.Events[i] != bc.Events[i] {
				t.Fatalf("%q event %d: %v vs %v", doc, i, sc.Events[i], bc.Events[i])
			}
		}
	}
}

// TestAsBytesHandler checks the Handler compatibility shim (and that a type
// implementing BytesHandler is passed through unchanged).
func TestAsBytesHandler(t *testing.T) {
	var c Collector
	bh := AsBytesHandler(&c)
	if err := ParseBytes([]byte(`<a x="1">t</a>`), bh); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: StartDocument},
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "@x"},
		{Kind: Text, Data: "1"},
		{Kind: EndElement, Name: "@x"},
		{Kind: Text, Data: "t"},
		{Kind: EndElement, Name: "a"},
		{Kind: EndDocument},
	}
	if len(c.Events) != len(want) {
		t.Fatalf("events = %v", c.Events)
	}
	for i := range want {
		if c.Events[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, c.Events[i], want[i])
		}
	}
	// A handler that already implements BytesHandler is passed through
	// unchanged, so it keeps receiving zero-copy callbacks.
	var both dualCollector
	if AsBytesHandler(&both) != &both {
		t.Fatal("AsBytesHandler wrapped a BytesHandler instead of passing it through")
	}
}

// dualCollector implements both Handler and BytesHandler.
type dualCollector struct {
	Collector
	byteCollector
}

func (d *dualCollector) StartDocument() {}
func (d *dualCollector) EndDocument()   {}

// FuzzByteScanner fuzzes the byte-level scanner differentially against the
// string scanner: both must accept or reject the same inputs, and on
// accepted inputs produce identical event streams.
func FuzzByteScanner(f *testing.F) {
	seeds := []string{
		`<a c="3"> <b> 4 </b> </a>`,
		`<a><b/><c x="1"/></a>`,
		`<a>&lt;x&gt; &amp; &#65;</a>`,
		`<a><![CDATA[1 < 2]]></a>`,
		`<?xml version="1.0"?><!-- c --><a/>`,
		`<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b>1</b></a>`,
		`<a>1</a><b>2</b>`,
		`<a x='1&quot;'/>`,
		`<a>&bogus;</a>`,
		"<a>\n  <b> </b>\n</a>",
		`<a x="1" y="2" z="3">mixed<b/>tail</a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		var sc Collector
		strErr := Parse([]byte(input), &sc)
		var bc byteCollector
		byteErr := ParseBytes([]byte(input), &bc)
		if (strErr == nil) != (byteErr == nil) {
			t.Fatalf("acceptance mismatch: scanner err=%v, byte scanner err=%v", strErr, byteErr)
		}
		if strErr != nil {
			// Compare the common event prefix only: the scanners may
			// detect the error at slightly different queue/callback
			// points.
			n := len(sc.Events)
			if len(bc.Events) < n {
				n = len(bc.Events)
			}
			sc.Events = sc.Events[:n]
			bc.Events = bc.Events[:n]
		}
		if len(sc.Events) != len(bc.Events) {
			t.Fatalf("event count mismatch: %d vs %d\n%v\n%v",
				len(sc.Events), len(bc.Events), sc.Events, bc.Events)
		}
		for i := range sc.Events {
			if sc.Events[i] != bc.Events[i] {
				t.Fatalf("event %d: %v vs %v", i, sc.Events[i], bc.Events[i])
			}
		}
	})
}
