// Package load is the xpushload load-generator subsystem: a YCSB-style
// open-loop harness that drives a real xpushserve broker over TCP with
// skewed subscriber popularity, mixed document sizes, durable/ephemeral
// subscription mixes, and churn (subscribe/unsubscribe/reconnect storms).
//
// The pieces:
//
//   - Spec / ParseProps: the pluggable workload description (a properties
//     file plus programmatic overrides) — subscriber count, distinct-filter
//     pool, popularity distribution, durable ratio, document size mix,
//     publish rate, and a sequence of run phases.
//   - Plan / BuildPlan: the deterministic materialization of a Spec —
//     filter pool, subscriber assignments, padded document pool, and the
//     seeded draw sequences. Same seed, same workload sequence.
//   - Runner / Run: the open-loop engine — intended-start arrival
//     scheduling with bounded in-flight publishes (client.PublishPipelined),
//     a churn engine on the real client package, and coordinated-
//     omission-safe measurement of publish-ack and end-to-end delivery
//     latency into HDR-style histograms (Hist).
//
// Open loop means the scheduler decides when each document *should* be
// published (intended-start timestamps from the target rate) and measures
// every latency from that intended start, not from the moment the send
// finally happened. A closed-loop harness silently stops sending while the
// system stalls, so its percentiles omit exactly the intervals users
// suffered through — coordinated omission. Here a stall inflates the
// recorded latency of every document scheduled during it, which is what an
// arrival-rate-driven production workload would experience.
package load

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SizeClass is one entry of the document size mix: documents padded to
// Bytes, published with relative frequency Weight.
type SizeClass struct {
	Bytes  int
	Weight int
}

// Phase is one stage of a scenario: a duration at a publish rate, with
// optional churn and reconnect storms running alongside.
type Phase struct {
	// Name labels the phase in reports ("warmup", "steady", "churn", ...).
	Name string
	// Duration is how long the phase runs.
	Duration time.Duration
	// Rate overrides Spec.Rate for this phase (0 = inherit).
	Rate float64
	// ChurnRate is subscribe/unsubscribe operations per second: each op
	// unsubscribes a random ephemeral subscriber slot and resubscribes it
	// to a filter drawn from the popularity distribution.
	ChurnRate float64
	// ReconnectRate is connection storms per second: each op closes a
	// random subscriber connection outright and re-establishes it with
	// client.DialRetry, resubscribing every slot it carried (durable slots
	// resume their names and replay).
	ReconnectRate float64
}

// Spec is a complete workload description. The zero value is not runnable;
// start from DefaultSpec.
type Spec struct {
	// Name labels the scenario in reports and durable subscriber names.
	Name string
	// Seed makes the whole workload sequence deterministic.
	Seed int64
	// Dataset is the document/filter domain: "protein" or "nasa".
	Dataset string
	// Subscribers is the number of subscriptions held open.
	Subscribers int
	// Filters is the distinct-filter pool size; subscriber popularity
	// draws indexes into it, so Subscribers >> Filters means shared
	// (dedupable) filters with a skew-dependent fan-out.
	Filters int
	// MeanPreds is the filter generator's mean atomic predicates per query.
	MeanPreds float64
	// Popularity is the subscriber-filter distribution: "uniform",
	// "zipfian", "latest", or "sequential".
	Popularity string
	// ZipfTheta is the zipfian/latest skew constant (0 = 0.99).
	ZipfTheta float64
	// DurableRatio is the fraction of subscribers using durable
	// subscriptions (requires a WAL-backed broker).
	DurableRatio float64
	// DocSizes is the weighted document size mix.
	DocSizes []SizeClass
	// DocPool is how many distinct documents are pre-generated per size
	// class.
	DocPool int
	// Rate is the default target publish rate, documents per second.
	Rate float64
	// Window bounds in-flight pipelined publishes.
	Window int
	// Connections is the number of ephemeral subscriber connections.
	Connections int
	// DurableConnections is the number of connections carrying the durable
	// subscribers (each costs the broker one WAL replay pump).
	DurableConnections int
	// ReportInterval is the progress-line period (0 = 1s).
	ReportInterval time.Duration
	// Phases run in order. Empty is invalid.
	Phases []Phase
}

// DefaultSpec returns the baseline every properties file and flag set
// patches: a small uniform scenario that any broker can absorb.
func DefaultSpec() Spec {
	return Spec{
		Name:               "default",
		Seed:               1,
		Dataset:            "protein",
		Subscribers:        100,
		Filters:            50,
		MeanPreds:          1.15,
		Popularity:         "zipfian",
		ZipfTheta:          0.99,
		DurableRatio:       0,
		DocSizes:           []SizeClass{{Bytes: 2048, Weight: 1}},
		DocPool:            64,
		Rate:               500,
		Window:             64,
		Connections:        8,
		DurableConnections: 4,
		ReportInterval:     time.Second,
	}
}

// Validate checks a Spec for internal consistency.
func (s *Spec) Validate() error {
	switch {
	case s.Subscribers < 1:
		return fmt.Errorf("load: subscribers must be >= 1, got %d", s.Subscribers)
	case s.Filters < 1:
		return fmt.Errorf("load: filters must be >= 1, got %d", s.Filters)
	case s.Rate <= 0:
		return fmt.Errorf("load: rate must be > 0, got %g", s.Rate)
	case s.DurableRatio < 0 || s.DurableRatio > 1:
		return fmt.Errorf("load: durable-ratio must be in [0,1], got %g", s.DurableRatio)
	case len(s.DocSizes) == 0:
		return fmt.Errorf("load: doc-sizes must name at least one size class")
	case len(s.Phases) == 0:
		return fmt.Errorf("load: at least one phase is required (e.g. phase.steady = 10s)")
	case s.Connections < 1:
		return fmt.Errorf("load: connections must be >= 1, got %d", s.Connections)
	case s.DurableConnections < 1:
		return fmt.Errorf("load: durable-connections must be >= 1, got %d", s.DurableConnections)
	case s.DocPool < 1:
		return fmt.Errorf("load: doc-pool must be >= 1, got %d", s.DocPool)
	}
	for _, c := range s.DocSizes {
		if c.Bytes < 64 || c.Weight < 1 {
			return fmt.Errorf("load: bad size class %d:%d", c.Bytes, c.Weight)
		}
	}
	for _, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("load: phase %q needs a positive duration", p.Name)
		}
		if p.ChurnRate < 0 || p.ReconnectRate < 0 || p.Rate < 0 {
			return fmt.Errorf("load: phase %q has a negative rate", p.Name)
		}
	}
	switch s.Popularity {
	case "uniform", "zipfian", "latest", "sequential":
	default:
		return fmt.Errorf("load: unknown popularity %q (uniform, zipfian, latest, sequential)", s.Popularity)
	}
	switch s.Dataset {
	case "protein", "nasa":
	default:
		return fmt.Errorf("load: unknown dataset %q (protein, nasa)", s.Dataset)
	}
	return nil
}

// ParseProps reads a YCSB-style properties file onto spec: one `key = value`
// per line, '#' comments, later keys win. Phases are ordered by their
// position in the file:
//
//	# smoke.props
//	name = smoke
//	subscribers = 200
//	filters = 50
//	popularity = zipfian
//	durable-ratio = 0.2
//	doc-sizes = 1024:4,8192:1
//	rate = 400
//	phase.warmup = 1s
//	phase.steady = 3s
//	phase.churn = 3s churn=50 reconnect=5
func ParseProps(r io.Reader, spec *Spec) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, value, ok := strings.Cut(text, "=")
		if !ok {
			return fmt.Errorf("load: props line %d: expected key = value, got %q", line, text)
		}
		if err := spec.Set(strings.TrimSpace(key), strings.TrimSpace(value)); err != nil {
			return fmt.Errorf("load: props line %d: %w", line, err)
		}
	}
	return sc.Err()
}

// Set applies one property (the same keys the props file uses) onto the
// spec, so command-line -set key=value overrides compose with a file.
func (s *Spec) Set(key, value string) error {
	if name, ok := strings.CutPrefix(key, "phase."); ok {
		p, err := parsePhase(name, value)
		if err != nil {
			return err
		}
		// Re-setting an existing phase updates it in place (file order is
		// preserved); a new name appends.
		for i := range s.Phases {
			if s.Phases[i].Name == name {
				s.Phases[i] = p
				return nil
			}
		}
		s.Phases = append(s.Phases, p)
		return nil
	}
	switch key {
	case "name":
		s.Name = value
		return nil
	case "seed":
		return setInt64(&s.Seed, value)
	case "dataset":
		s.Dataset = value
		return nil
	case "subscribers":
		return setInt(&s.Subscribers, value)
	case "filters":
		return setInt(&s.Filters, value)
	case "mean-preds":
		return setFloat(&s.MeanPreds, value)
	case "popularity":
		s.Popularity = value
		return nil
	case "zipf-theta":
		return setFloat(&s.ZipfTheta, value)
	case "durable-ratio":
		return setFloat(&s.DurableRatio, value)
	case "doc-sizes":
		mix, err := ParseSizeMix(value)
		if err != nil {
			return err
		}
		s.DocSizes = mix
		return nil
	case "doc-pool":
		return setInt(&s.DocPool, value)
	case "rate":
		return setFloat(&s.Rate, value)
	case "window":
		return setInt(&s.Window, value)
	case "connections":
		return setInt(&s.Connections, value)
	case "durable-connections":
		return setInt(&s.DurableConnections, value)
	case "report-interval":
		d, err := time.ParseDuration(value)
		if err != nil {
			return err
		}
		s.ReportInterval = d
		return nil
	default:
		return fmt.Errorf("unknown workload property %q", key)
	}
}

// parsePhase parses `<duration> [rate=N] [churn=N] [reconnect=N]`.
func parsePhase(name, value string) (Phase, error) {
	fields := strings.Fields(value)
	if len(fields) == 0 {
		return Phase{}, fmt.Errorf("phase %q: empty value", name)
	}
	d, err := time.ParseDuration(fields[0])
	if err != nil {
		return Phase{}, fmt.Errorf("phase %q: %w", name, err)
	}
	p := Phase{Name: name, Duration: d}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Phase{}, fmt.Errorf("phase %q: expected key=value, got %q", name, f)
		}
		var dst *float64
		switch k {
		case "rate":
			dst = &p.Rate
		case "churn":
			dst = &p.ChurnRate
		case "reconnect":
			dst = &p.ReconnectRate
		default:
			return Phase{}, fmt.Errorf("phase %q: unknown option %q", name, k)
		}
		if err := setFloat(dst, v); err != nil {
			return Phase{}, fmt.Errorf("phase %q: %w", name, err)
		}
	}
	return p, nil
}

// ParseSizeMix parses a weighted size list like "1024:4,8192:1" (bytes
// accept k/m suffixes: "64k:1").
func ParseSizeMix(text string) ([]SizeClass, error) {
	var out []SizeClass
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sz, wt, _ := strings.Cut(part, ":")
		bytes, err := parseBytes(sz)
		if err != nil {
			return nil, fmt.Errorf("size class %q: %w", part, err)
		}
		weight := 1
		if wt != "" {
			weight, err = strconv.Atoi(wt)
			if err != nil {
				return nil, fmt.Errorf("size class %q: %w", part, err)
			}
		}
		out = append(out, SizeClass{Bytes: bytes, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size mix %q", text)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes < out[j].Bytes })
	return out, nil
}

func parseBytes(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// String renders the size mix back to props form.
func SizeMixString(mix []SizeClass) string {
	parts := make([]string, len(mix))
	for i, c := range mix {
		parts[i] = fmt.Sprintf("%d:%d", c.Bytes, c.Weight)
	}
	return strings.Join(parts, ",")
}

func setInt(dst *int, v string) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

func setInt64(dst *int64, v string) error {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

func setFloat(dst *float64, v string) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	*dst = f
	return nil
}
