package xpushstream

import (
	"bytes"
	"fmt"
	"testing"
)

// TestWithQueriesAddsLayer: deriving with extra filters keeps existing
// matches and adds the new filter's, without mutating the receiver.
func TestWithQueriesAddsLayer(t *testing.T) {
	base, err := Compile([]string{`//order[total > 1000]`}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte(`<order priority="high"><total>2500</total></order>`)
	if m, err := base.FilterDocument(doc); err != nil || len(m) != 1 {
		t.Fatalf("base: matches=%v err=%v", m, err)
	}

	next, err := base.WithQueries([]string{`//order[@priority = "high"]`})
	if err != nil {
		t.Fatal(err)
	}
	m, err := next.FilterDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0] != 0 || m[1] != 1 {
		t.Fatalf("derived matches = %v, want [0 1]", m)
	}

	// The receiver is unchanged: same query set, same matches.
	if got := base.Queries(); len(got) != 1 {
		t.Fatalf("receiver now has %d queries, want 1", len(got))
	}
	if m, err := base.FilterDocument(doc); err != nil || len(m) != 1 {
		t.Fatalf("receiver after derive: matches=%v err=%v", m, err)
	}

	// The derived engine shares the warm machine: its state count is at
	// least the receiver's (layer 0 is the same machine object).
	if next.Stats().States < base.Stats().States {
		t.Errorf("derived engine lost warm states: %d < %d",
			next.Stats().States, base.Stats().States)
	}
}

// TestWithQueriesBadFilter: a parse error leaves the receiver untouched.
func TestWithQueriesBadFilter(t *testing.T) {
	base, err := Compile([]string{`//a`}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.WithQueries([]string{`//a[`}); err == nil {
		t.Fatal("deriving with a malformed filter succeeded")
	}
	if len(base.Queries()) != 1 {
		t.Error("failed derive mutated the receiver")
	}
}

// TestWithoutQueryMasks: the derived engine stops reporting the removed
// filter; the receiver keeps it.
func TestWithoutQueryMasks(t *testing.T) {
	base, err := Compile([]string{`//m[a = 1]`, `//m[b = 2]`}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte(`<m><a>1</a><b>2</b></m>`)
	next, err := base.WithoutQuery(0)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := next.FilterDocument(doc); err != nil || len(m) != 1 || m[0] != 1 {
		t.Fatalf("derived matches = %v err=%v, want [1]", m, err)
	}
	if m, err := base.FilterDocument(doc); err != nil || len(m) != 2 {
		t.Fatalf("receiver matches = %v err=%v, want both", m, err)
	}
	if rm := next.Removed(); !rm[0] || rm[1] {
		t.Errorf("derived removed mask = %v, want [true false]", rm)
	}
	if _, err := next.WithoutQuery(99); err == nil {
		t.Error("removing an out-of-range filter succeeded")
	}
}

// TestWorkloadSnapshotRoundTrip: a multi-layer workload with a removed
// filter round-trips through the self-describing snapshot, restoring
// queries, the removed mask, and the warm machine state.
func TestWorkloadSnapshotRoundTrip(t *testing.T) {
	e, err := Compile([]string{`//m[v > 1]`, `//m[v > 2]`}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Grow a second layer and mask one filter, then warm the machine.
	e, err = e.WithQueries([]string{`//a//b[c = "x"]`})
	if err != nil {
		t.Fatal(err)
	}
	e, err = e.WithoutQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.FilterDocument([]byte(fmt.Sprintf(`<m><v>%d</v></m>`, i%4))); err != nil {
			t.Fatal(err)
		}
	}
	warm := e.Stats()

	var buf bytes.Buffer
	if err := e.WriteWorkloadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenWorkloadSnapshot(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Queries(), e.Queries(); len(got) != len(want) {
		t.Fatalf("restored %d queries, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("query %d: got %q, want %q", i, got[i], want[i])
			}
		}
	}
	if rm := restored.Removed(); !rm[1] || rm[0] || rm[2] {
		t.Errorf("restored removed mask = %v, want only filter 1 masked", rm)
	}
	if got := restored.Stats().States; got != warm.States {
		t.Errorf("restored %d states, want %d", got, warm.States)
	}
	// Filtering on the restored engine honours the mask: only //m[v > 1]
	// fires — filter 1 matches but is removed, filter 2 doesn't match.
	if m, err := restored.FilterDocument([]byte(`<m><v>3</v></m>`)); err != nil || len(m) != 1 || m[0] != 0 {
		t.Fatalf("restored matches = %v err=%v, want [0]", m, err)
	}
}

// TestWorkloadSnapshotRejectsGarbage: bad magic and truncation fail cleanly.
func TestWorkloadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := OpenWorkloadSnapshot(bytes.NewReader([]byte("not a snapshot")), Config{}); err == nil {
		t.Error("garbage snapshot opened")
	}
	e, err := Compile([]string{`//a`}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteWorkloadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := OpenWorkloadSnapshot(bytes.NewReader(trunc), Config{}); err == nil {
		t.Error("truncated snapshot opened")
	}
}
