package dtd

import (
	"strings"
	"testing"
)

const personDTD = `
<!-- the person example of Sec. 5 -->
<!ELEMENT person (name, age?, phone*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ATTLIST person id CDATA #REQUIRED kind (member|guest) "member">
`

func TestParsePersonDTD(t *testing.T) {
	d, err := Parse(personDTD)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "person" {
		t.Errorf("Root = %q", d.Root)
	}
	p := d.Element("person")
	if p == nil || p.Kind != Children {
		t.Fatalf("person = %+v", p)
	}
	if got := p.Content.String(); got != "(name, age?, phone*)" {
		t.Errorf("content = %q", got)
	}
	if len(p.Attrs) != 2 {
		t.Fatalf("attrs = %+v", p.Attrs)
	}
	if p.Attrs[0].Name != "id" || !p.Attrs[0].Required || p.Attrs[0].Type != "CDATA" {
		t.Errorf("id attr = %+v", p.Attrs[0])
	}
	if p.Attrs[1].Type != "ENUM" || len(p.Attrs[1].Enum) != 2 || p.Attrs[1].Default != "member" {
		t.Errorf("kind attr = %+v", p.Attrs[1])
	}
	if d.Element("name").Kind != PCData {
		t.Error("name should be PCDATA")
	}
	if got := d.Children("person"); strings.Join(got, ",") != "age,name,phone" {
		t.Errorf("Children(person) = %v", got)
	}
	if !d.HasText("name") || d.HasText("person") {
		t.Error("HasText misreports")
	}
}

func TestParseVariants(t *testing.T) {
	d := MustParse(`
<!ELEMENT a (b | (c, d))+>
<!ELEMENT b EMPTY>
<!ELEMENT c ANY>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e (#PCDATA)>
<?pi ignored?>
<!ENTITY x "ignored">
`)
	if d.Element("a").Content.String() != "(b | (c, d))+" {
		t.Errorf("a content = %q", d.Element("a").Content)
	}
	if d.Element("b").Kind != Empty || d.Element("c").Kind != Any {
		t.Error("EMPTY/ANY misparsed")
	}
	if d.Element("d").Kind != Mixed || d.Element("d").Mixed[0] != "e" {
		t.Errorf("mixed = %+v", d.Element("d"))
	}
	// ANY children = all declared elements.
	if len(d.Children("c")) != 5 {
		t.Errorf("Children(ANY) = %v", d.Children("c"))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<!ELEMENT>`,
		`<!ELEMENT a>`,
		`<!ELEMENT a (b>`,
		`<!ELEMENT a (b,c|d)>`,
		`<!ELEMENT a (#PCDATA|b)>`, // mixed must end )*
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`,
		`<!ATTLIST a x CDATA>`, // missing default
		`garbage`,
		`<!ELEMENT a (#PCDATA)> trailing`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestAttlistBeforeElement(t *testing.T) {
	d := MustParse(`
<!ATTLIST a x CDATA #IMPLIED>
<!ELEMENT b (#PCDATA)>
`)
	if d.Element("a") == nil || len(d.Element("a").Attrs) != 1 {
		t.Error("placeholder element not created")
	}
}

func TestRecursion(t *testing.T) {
	if MustParse(personDTD).IsRecursive() {
		t.Error("person DTD is not recursive")
	}
	rec := MustParse(`
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
`)
	if !rec.IsRecursive() {
		t.Error("part DTD is recursive")
	}
	if got := rec.MaxDepth(8); got != 8 {
		t.Errorf("recursive MaxDepth = %d", got)
	}
	if got := MustParse(personDTD).MaxDepth(50); got != 2 {
		t.Errorf("person MaxDepth = %d", got)
	}
}

func TestSiblingOrderSequence(t *testing.T) {
	// The paper's order example: name, age, phone must appear in this
	// order, so name ≺ age ≺ phone.
	d := MustParse(`
<!ELEMENT person (name, age, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
`)
	o := d.SiblingOrder()
	for _, pair := range [][2]string{{"name", "age"}, {"age", "phone"}, {"name", "phone"}} {
		if !o.Precedes(pair[0], pair[1]) {
			t.Errorf("%s should precede %s", pair[0], pair[1])
		}
		if o.Precedes(pair[1], pair[0]) {
			t.Errorf("%s should not precede %s", pair[1], pair[0])
		}
	}
}

func TestSiblingOrderRepetitionBreaks(t *testing.T) {
	// (a, b)* interleaves across iterations: no order.
	d := MustParse(`
<!ELEMENT r (a, b)*>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	o := d.SiblingOrder()
	if o.Precedes("a", "b") || o.Precedes("b", "a") {
		t.Error("repeated sequence must not be ordered")
	}
}

func TestSiblingOrderOptionalKeeps(t *testing.T) {
	// (a?, b*) still orders a before b: every a precedes every b.
	d := MustParse(`
<!ELEMENT r (a?, b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	if !d.SiblingOrder().Precedes("a", "b") {
		t.Error("a should precede b")
	}
}

func TestSiblingOrderChoice(t *testing.T) {
	// Alternatives never co-occur: no constraint, and no false order.
	d := MustParse(`
<!ELEMENT r (a | b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	o := d.SiblingOrder()
	if o.Precedes("a", "b") || o.Precedes("b", "a") {
		t.Error("choice must not be ordered")
	}
}

func TestSiblingOrderConflictAcrossParents(t *testing.T) {
	// p1 orders (a, b); p2 orders (b, a): the global order drops both.
	d := MustParse(`
<!ELEMENT r (p1, p2)>
<!ELEMENT p1 (a, b)>
<!ELEMENT p2 (b, a)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	o := d.SiblingOrder()
	if o.Precedes("a", "b") || o.Precedes("b", "a") {
		t.Error("conflicting parents must cancel the order")
	}
}

func TestSiblingOrderNameSpanningSlots(t *testing.T) {
	// a appears in two slots around b: (a, b, a?) — not orderable.
	d := MustParse(`
<!ELEMENT r (a, b, a?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	o := d.SiblingOrder()
	if o.Precedes("a", "b") || o.Precedes("b", "a") {
		t.Error("slot-spanning name must not be ordered")
	}
}

func TestAttributesPrecedeElements(t *testing.T) {
	o := EmptyOrder()
	if !o.Precedes("@id", "name") {
		t.Error("attributes precede elements")
	}
	if o.Precedes("name", "@id") || o.Precedes("@a", "@b") {
		t.Error("false attribute order")
	}
}

func TestNestedGroupOrder(t *testing.T) {
	// ((a, b), c): a ≺ b, a ≺ c, b ≺ c.
	d := MustParse(`
<!ELEMENT r ((a, b), c)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
`)
	o := d.SiblingOrder()
	for _, p := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}} {
		if !o.Precedes(p[0], p[1]) {
			t.Errorf("%s ≺ %s missing", p[0], p[1])
		}
	}
	if o.ElementPairs() != 3 {
		t.Errorf("ElementPairs = %d", o.ElementPairs())
	}
}

func TestElementNamesOrder(t *testing.T) {
	d := MustParse(`<!ELEMENT b (a)><!ELEMENT a (#PCDATA)>`)
	got := d.ElementNames()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("ElementNames = %v", got)
	}
}
