// Package client is the Go client for the repro/server broker: it speaks
// the length-prefixed framed protocol (see repro/server), multiplexing
// synchronous request/response calls (Subscribe, Unsubscribe, Publish,
// Ping) with asynchronous DELIVER notifications on one TCP connection.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/sax"
	"repro/server"
)

// Delivery is one matched-document notification from the broker.
type Delivery struct {
	// Filters holds the server-assigned ids of this client's filters that
	// matched the document.
	Filters []uint64
	// Doc is the document's bytes. The slice is owned by the receiver.
	Doc []byte
	// Durable reports whether this delivery came over a durable
	// subscription's replay stream; Offset is then the document's log
	// offset — pass it to Ack once the document is safely processed.
	// Non-durable deliveries carry no offset.
	Durable bool
	Offset  uint64
	// TraceID is non-zero when the broker traced this document end to end;
	// look the id up in the broker's /debug/traces output to see where the
	// delivery spent its time.
	TraceID uint64
}

// Options configures a Client. The zero value is usable.
type Options struct {
	// OnDeliver receives matched-document notifications. It is called
	// synchronously from the read loop: a slow handler delays subsequent
	// frames (and eventually exerts the server's backpressure policy),
	// which is often exactly what a subscriber wants. nil discards
	// deliveries.
	OnDeliver func(Delivery)
	// MaxDocBytes bounds frames in both directions, mirroring the
	// server's limit and sax.Splitter.MaxDocBytes on the PublishStream
	// path (0 = 64 MiB).
	MaxDocBytes int
	// Timeout bounds each request's wait for its response (0 = none).
	Timeout time.Duration
	// DialTimeout bounds the initial connect (0 = none).
	DialTimeout time.Duration
}

func (o *Options) maxDocBytes() int {
	if o.MaxDocBytes > 0 {
		return o.MaxDocBytes
	}
	return 64 << 20
}

// Client is a broker connection. All methods are safe for concurrent use;
// requests are serialized on the wire.
type Client struct {
	nc  net.Conn
	opt Options

	reqMu sync.Mutex // serializes request/response round-trips
	wmu   sync.Mutex
	resp  chan server.Frame

	done    chan struct{} // closed when the read loop exits
	errMu   sync.Mutex
	readErr error

	pipeMu sync.Mutex
	pipe   *Pipeline // active pipelined publisher, if any

	closeOnce sync.Once
}

// Dial connects to a broker.
func Dial(addr string, opt Options) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:   nc,
		opt:  opt,
		resp: make(chan server.Frame, 1),
		done: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop routes incoming frames: DELIVER to the handler, everything else
// to the pending request.
func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		f, err := server.ReadFrame(br, c.opt.maxDocBytes())
		if err != nil {
			c.errMu.Lock()
			if c.readErr == nil {
				if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
					c.readErr = io.EOF
				} else {
					c.readErr = err
				}
			}
			c.errMu.Unlock()
			return
		}
		if f.Type == server.FrameDeliver {
			if c.opt.OnDeliver != nil {
				filters, doc, traceID, err := server.ParseDeliverPayloadTrace(f.Payload)
				if err == nil {
					c.opt.OnDeliver(Delivery{Filters: filters, Doc: doc, TraceID: traceID})
				}
			}
			continue
		}
		if f.Type == server.FrameDeliverAt {
			if c.opt.OnDeliver != nil {
				off, filters, doc, traceID, err := server.ParseDeliverAtPayloadTrace(f.Payload)
				if err == nil {
					c.opt.OnDeliver(Delivery{Filters: filters, Doc: doc, Durable: true, Offset: off, TraceID: traceID})
				}
			}
			continue
		}
		if f.Type == server.FrameProtoErr {
			// The server is about to close the connection; latch its reason
			// so Err() reports the protocol violation instead of a bare EOF.
			c.errMu.Lock()
			if c.readErr == nil {
				c.readErr = fmt.Errorf("client: protocol error from server: %s", f.Payload)
			}
			c.errMu.Unlock()
			continue
		}
		if f.Type == server.FramePubAcks {
			c.pipeMu.Lock()
			p := c.pipe
			c.pipeMu.Unlock()
			if p != nil {
				if acks, err := server.ParsePubAcksPayload(f.Payload); err == nil {
					p.handleAcks(acks)
				}
			}
			continue
		}
		select {
		case c.resp <- f:
		default: // unsolicited response; drop rather than stall deliveries
		}
	}
}

// roundTrip sends one request frame and waits for its response.
func (c *Client) roundTrip(typ byte, payload []byte) (server.Frame, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	// Drop any stale response left by a timed-out predecessor.
	select {
	case <-c.resp:
	default:
	}
	c.wmu.Lock()
	err := server.WriteFrame(c.nc, typ, payload)
	c.wmu.Unlock()
	if err != nil {
		return server.Frame{}, err
	}
	var timeout <-chan time.Time
	if c.opt.Timeout > 0 {
		t := time.NewTimer(c.opt.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case f := <-c.resp:
		if f.Type == server.FrameErr {
			return f, fmt.Errorf("client: server error: %s", f.Payload)
		}
		return f, nil
	case <-c.done:
		return server.Frame{}, fmt.Errorf("client: connection closed: %w", c.err())
	case <-timeout:
		return server.Frame{}, fmt.Errorf("client: request timed out after %v", c.opt.Timeout)
	}
}

// Subscribe registers an XPath filter and returns its server-assigned
// subscription id. Matching documents arrive via Options.OnDeliver. The id
// identifies this subscription, not a machine query: the broker
// deduplicates equivalent filters across subscribers behind the same
// compiled query, so two clients subscribing to the same filter get
// distinct ids riding on shared machine state.
func (c *Client) Subscribe(xpath string) (uint64, error) {
	f, err := c.roundTrip(server.FrameSubscribe, []byte(xpath))
	if err != nil {
		return 0, err
	}
	return server.ParseUint64(f.Payload)
}

// SubscribeDurable registers an XPath filter under a persistent subscriber
// name (a WAL-backed broker is required). Matching documents arrive via
// Options.OnDeliver with Durable set; the broker replays every document
// published since the name's persisted cursor, so after acknowledging with
// Ack a reconnecting subscriber resumes exactly where it left off
// (at-least-once: unacked documents are delivered again). resume is the log
// offset replay starts from. Reconnecting under a live name takes it over —
// the broker closes the previous connection.
func (c *Client) SubscribeDurable(name, xpath string) (id, resume uint64, err error) {
	payload := server.AppendSubscribeDurablePayload(nil, name, xpath)
	f, err := c.roundTrip(server.FrameSubscribeDurable, payload)
	if err != nil {
		return 0, 0, err
	}
	if len(f.Payload) != 16 {
		return 0, 0, fmt.Errorf("client: expected 16-byte durable-subscribe reply, got %d", len(f.Payload))
	}
	id, _ = server.ParseUint64(f.Payload[:8])
	resume, _ = server.ParseUint64(f.Payload[8:])
	return id, resume, nil
}

// Ack tells the broker every durable delivery at or below offset is
// processed; the persisted cursor advances past it. Acks are fire-and-forget
// (no response frame), so calling Ack from inside OnDeliver is safe — it
// cannot deadlock against the read loop.
func (c *Client) Ack(offset uint64) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return server.WriteFrame(c.nc, server.FrameAck, server.AppendUint64(nil, offset))
}

// Unsubscribe removes a filter previously registered on this connection.
func (c *Client) Unsubscribe(id uint64) error {
	_, err := c.roundTrip(server.FrameUnsubscribe, server.AppendUint64(nil, id))
	return err
}

// Publish sends one XML document and returns how many subscriptions
// (across all subscribers) matched it.
func (c *Client) Publish(doc []byte) (int, error) {
	return c.PublishTraced(doc, 0)
}

// PublishTraced is Publish carrying an upstream trace id: the broker adopts
// the id for its own spans (wal_append, filter, deliver), so the document's
// trace stitches across process hops. A zero traceID sends the plain,
// byte-identical PUBLISH frame.
func (c *Client) PublishTraced(doc []byte, traceID uint64) (int, error) {
	typ, payload := server.FramePublish, doc
	if traceID != 0 {
		typ |= server.FrameTraceFlag
		payload = server.AppendTracedPayload(make([]byte, 0, 8+len(doc)), traceID, doc)
	}
	f, err := c.roundTrip(typ, payload)
	if err != nil {
		return 0, err
	}
	n, err := server.ParseUint64(f.Payload)
	return int(n), err
}

// PublishStream splits a stream of concatenated XML documents (bounded per
// document by Options.MaxDocBytes, via sax.Splitter) and publishes each.
// It returns the number of documents published.
func (c *Client) PublishStream(r io.Reader) (int, error) {
	n := 0
	err := sax.StreamDocumentsLimit(r, c.opt.MaxDocBytes, func(doc []byte) error {
		if _, err := c.Publish(doc); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}

// Ping round-trips a keepalive.
func (c *Client) Ping() error {
	f, err := c.roundTrip(server.FramePing, nil)
	if err != nil {
		return err
	}
	if f.Type != server.FramePong {
		return fmt.Errorf("client: expected PONG, got frame 0x%02x", f.Type)
	}
	return nil
}

// RemoteAddr returns the address of the broker end of the connection.
func (c *Client) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Done is closed when the connection's read loop has exited (server closed
// the connection, or Close was called) — after the final delivery has been
// handed to OnDeliver.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err returns the terminal read error after Done is closed (io.EOF for a
// clean remote close).
func (c *Client) Err() error {
	<-c.done
	return c.err()
}

func (c *Client) err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.readErr
}

// Close tears the connection down and waits for the read loop to finish.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { c.nc.Close() })
	<-c.done
	return nil
}

// PublishResult is the broker's acknowledgement of one pipelined publish.
type PublishResult struct {
	// Seq is the sequence number Pipeline.Publish assigned to the document
	// (starting at 1, in submission order).
	Seq uint64
	// Matches is how many filters matched, when Err is nil.
	Matches int
	// Err is the broker-side failure for this document (e.g. the WAL
	// rejected the append). The pipeline keeps running; use Close's return
	// to learn whether any publish in the stream failed.
	Err error
}

// Pipeline streams publishes without a per-document round trip: Publish
// writes a PUBLISH_ASYNC frame and returns as soon as the in-flight window
// has room, while the broker's batched acks flow back on the read loop.
// Against a fsync=always WAL broker this lets many documents share one
// group-committed fsync instead of paying one each.
//
// A Pipeline is safe for concurrent use, but documents are sequenced in the
// order Publish acquires the window. Close drains the window and reports the
// first failed publish.
type Pipeline struct {
	c        *Client
	onResult func(PublishResult) // optional, called from the read loop

	tokens chan struct{} // in-flight window; one token per outstanding doc

	mu       sync.Mutex
	seq      uint64
	inflight int
	firstErr error
	closed   bool
	signal   chan struct{} // buffered(1): kicked when inflight hits 0
}

// PublishPipelined starts a pipelined publish stream with the given
// in-flight window (documents written but not yet acked; <=0 means 64).
// onResult, if non-nil, receives every acknowledgement in order from the
// read loop — it must not block, or deliveries stall. Only one Pipeline may
// be active per client; Close it before starting another.
func (c *Client) PublishPipelined(window int, onResult func(PublishResult)) (*Pipeline, error) {
	if window <= 0 {
		window = 64
	}
	p := &Pipeline{
		c:        c,
		onResult: onResult,
		tokens:   make(chan struct{}, window),
		signal:   make(chan struct{}, 1),
	}
	c.pipeMu.Lock()
	defer c.pipeMu.Unlock()
	if c.pipe != nil {
		return nil, errors.New("client: a pipeline is already active; Close it first")
	}
	select {
	case <-c.done:
		return nil, fmt.Errorf("client: connection closed: %w", c.err())
	default:
	}
	c.pipe = p
	return p, nil
}

// Publish submits one document, blocking only while the in-flight window is
// full. The returned sequence number matches the eventual PublishResult. A
// write error tears the pipeline's usefulness down (the connection is
// broken); it is also latched for Close.
func (p *Pipeline) Publish(doc []byte) (uint64, error) {
	return p.PublishTraced(doc, 0)
}

// PublishTraced is Publish carrying an upstream trace id (see
// Client.PublishTraced). A zero traceID sends the plain PUBLISH_ASYNC frame.
func (p *Pipeline) PublishTraced(doc []byte, traceID uint64) (uint64, error) {
	select {
	case p.tokens <- struct{}{}:
	case <-p.c.done:
		return 0, fmt.Errorf("client: connection closed: %w", p.c.err())
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.tokens
		return 0, errors.New("client: pipeline closed")
	}
	p.seq++
	seq := p.seq
	p.inflight++
	p.mu.Unlock()

	typ := server.FramePublishAsync
	var payload []byte
	if traceID != 0 {
		typ |= server.FrameTraceFlag
		payload = server.AppendPublishAsyncPayload(server.AppendUint64(make([]byte, 0, 16+len(doc)), traceID), seq, doc)
	} else {
		payload = server.AppendPublishAsyncPayload(nil, seq, doc)
	}
	p.c.wmu.Lock()
	err := server.WriteFrame(p.c.nc, typ, payload)
	p.c.wmu.Unlock()
	if err != nil {
		p.settle(PublishResult{Seq: seq, Err: err}, false)
		return seq, err
	}
	return seq, nil
}

// handleAcks runs on the read loop for every PUBACKS frame.
func (p *Pipeline) handleAcks(acks []server.PubAck) {
	for _, a := range acks {
		r := PublishResult{Seq: a.Seq, Matches: int(a.Matches)}
		if a.Err != "" {
			r.Err = fmt.Errorf("client: server error: %s", a.Err)
		}
		p.settle(r, true)
	}
}

// settle records one document's outcome: releases its window slot, latches
// the first error, and wakes Close when the window drains. notify gates the
// onResult callback (write failures already returned the error to the
// caller directly).
func (p *Pipeline) settle(r PublishResult, notify bool) {
	p.mu.Lock()
	if p.inflight > 0 {
		p.inflight--
	}
	if r.Err != nil && p.firstErr == nil {
		p.firstErr = r.Err
	}
	drained := p.inflight == 0
	p.mu.Unlock()
	select {
	case <-p.tokens:
	default:
	}
	if drained {
		select {
		case p.signal <- struct{}{}:
		default:
		}
	}
	if notify && p.onResult != nil {
		p.onResult(r)
	}
}

// Close waits (bounded by Options.Timeout, if set) for every in-flight
// publish to be acknowledged, detaches the pipeline from the client, and
// returns the first error any publish in the stream hit. A timeout or a
// broken connection surfaces as an error even if no individual publish
// failed, since un-acked documents have unknown fates.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()

	var timeout <-chan time.Time
	if d := p.c.opt.Timeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	var waitErr error
wait:
	for {
		p.mu.Lock()
		drained := p.inflight == 0
		p.mu.Unlock()
		if drained {
			break
		}
		select {
		case <-p.signal:
		case <-p.c.done:
			waitErr = fmt.Errorf("client: connection closed with publishes in flight: %w", p.c.err())
			break wait
		case <-timeout:
			waitErr = fmt.Errorf("client: pipeline close timed out after %v with publishes in flight", p.c.opt.Timeout)
			break wait
		}
	}

	p.c.pipeMu.Lock()
	if p.c.pipe == p {
		p.c.pipe = nil
	}
	p.c.pipeMu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.firstErr != nil {
		return p.firstErr
	}
	return waitErr
}

// PublishStreamPipelined splits a stream of concatenated XML documents and
// publishes each through a pipeline with the given window, returning the
// number of documents submitted and the first error (parse, write, or
// broker-side reject).
func (c *Client) PublishStreamPipelined(r io.Reader, window int) (int, error) {
	p, err := c.PublishPipelined(window, nil)
	if err != nil {
		return 0, err
	}
	n := 0
	streamErr := sax.StreamDocumentsLimit(r, c.opt.MaxDocBytes, func(doc []byte) error {
		if _, err := p.Publish(doc); err != nil {
			return err
		}
		n++
		return nil
	})
	closeErr := p.Close()
	if streamErr != nil {
		return n, streamErr
	}
	return n, closeErr
}
