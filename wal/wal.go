// Package wal is the broker's durability layer: a segmented, CRC32C-framed
// append-only document log. Every published XML document is appended (and
// assigned a monotonic offset) before fan-out, so a broker crash loses no
// accepted documents; durable subscribers persist a cursor (see CursorStore)
// and replay matched documents from it on reconnect — the at-least-once half
// of the paper's message-routing application (Sec. 1) that the filter engine
// alone cannot provide.
//
// On-disk layout: Options.Dir holds segment files named
// <base-offset-hex-16>.wseg. Each segment starts with a 16-byte header (an
// 8-byte magic and the big-endian base offset) followed by records:
//
//	+--------+--------+----------------+
//	| u32 BE | u32 BE | payload        |
//	| length | CRC32C | length bytes   |
//	+--------+--------+----------------+
//
// Records are never rewritten; the log grows by appending to the active
// (last) segment and rotating to a new one on size/age bounds. Retention
// deletes whole sealed segments from the front. Recovery (Open) scans every
// segment and truncates the log at the first invalid record — a torn tail
// from a crash mid-append loses only the record being written, never an
// earlier one. A zero-length record is invalid by construction so a
// zero-filled tail (filesystems may zero-extend on crash) is recognized as
// torn.
//
// Durability is configurable per Options.Fsync: "always" fsyncs each append,
// "interval" fsyncs on a timer (bounded loss window), "never" leaves
// flushing to the OS (rotation and Close still fsync).
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	segSuffix  = ".wseg"
	headerSize = 16 // 8-byte magic + u64 BE base offset
	recHdrSize = 8  // u32 BE length + u32 BE CRC32C
)

var segMagic = [8]byte{'X', 'P', 'W', 'A', 'L', 'S', 'G', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrTruncated reports a read at an offset older than the retained log
	// (the segment holding it was deleted by retention). Readers recover by
	// restarting from FirstOffset.
	ErrTruncated = errors.New("wal: offset predates the retained log")
)

// FsyncPolicy selects when appends are flushed to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every append: no accepted document is lost
	// to a crash, at the cost of one fsync per publish.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval fsyncs on a timer (Options.FsyncEvery): a crash loses
	// at most one interval of appends.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the OS; rotation and Close still fsync.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy name from configuration ("" =
// FsyncInterval).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch p := FsyncPolicy(s); p {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return p, nil
	case "":
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want %s, %s, or %s)",
		s, FsyncAlways, FsyncInterval, FsyncNever)
}

// Options configures a Log. Only Dir is required.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes rotates the active segment when it exceeds this size
	// (<= 0 = 64 MiB).
	SegmentBytes int64
	// SegmentAge rotates a non-empty active segment older than this
	// (0 = size-based rotation only). Evaluated on append.
	SegmentAge time.Duration
	// Fsync selects the flush policy ("" = FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (<= 0 = 100ms).
	FsyncEvery time.Duration
	// RetentionBytes deletes the oldest sealed segments while the log
	// exceeds this size (0 = unlimited). The active segment is never
	// deleted. Evaluated on rotation.
	RetentionBytes int64
	// RetentionAge deletes sealed segments whose newest record is older
	// than this (0 = unlimited). Evaluated on rotation.
	RetentionAge time.Duration
	// MaxRecordBytes bounds one record's payload (<= 0 = 64 MiB); larger
	// lengths in a file are treated as corruption during recovery.
	MaxRecordBytes int
	// BatchMaxRecords caps how many appends one group-commit batch may
	// coalesce (<= 0 = 1024). Concurrent appenders share a single file
	// write and — under FsyncAlways — a single fsync per batch.
	BatchMaxRecords int
	// BatchMaxWait stretches the group-commit accumulation window: the
	// batch leader holds the commit for up to this long (or until the
	// batch is full) so more appenders can join. The previous batch's
	// fsync is the natural accumulation window, so usually nothing more
	// is needed; the knob is an override for unusual disks.
	//
	// 0 (the default) is adaptive: under FsyncAlways, once committed
	// batches show concurrent appenders (the previous batch coalesced two
	// or more records) and the open batch is still smaller than that —
	// i.e. there is plausibly still someone to wait for — the leader
	// waits half the observed fsync-latency EWMA (capped at 5ms). Slow
	// disks earn wider windows and bigger batches; fast disks stay near
	// zero; strictly sequential appenders and closed appender loops that
	// already piled in during the lock handoff never wait at all. A
	// negative value disables the adaptive window and always commits as
	// soon as the file lock is acquired.
	BatchMaxWait time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o *Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return 64 << 20
}

func (o *Options) fsyncEvery() time.Duration {
	if o.FsyncEvery > 0 {
		return o.FsyncEvery
	}
	return 100 * time.Millisecond
}

func (o *Options) maxRecordBytes() int {
	if o.MaxRecordBytes > 0 {
		return o.MaxRecordBytes
	}
	return 64 << 20
}

func (o *Options) batchMaxRecords() int {
	if o.BatchMaxRecords > 0 {
		return o.BatchMaxRecords
	}
	return 1024
}

// segment is one on-disk log file. base is the offset of its first record;
// sealed segments are immutable, the last segment is the append target.
type segment struct {
	base       uint64
	records    uint64
	size       int64 // bytes including the header
	path       string
	created    time.Time
	lastAppend time.Time // newest record's write time (RetentionAge basis)
}

// segFile is the active segment's file handle. Production is always an
// *os.File; the indirection is a seam so tests can inject write/fsync
// failures without reaching for syscall tricks.
type segFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// wrapSegFile wraps every newly opened active segment. Package tests swap it
// to inject faults; it must be set before Open and not mutated while the log
// is live.
var wrapSegFile = func(f *os.File) segFile { return f }

// batch is one group-commit unit: the framed records of every append that
// joined it, committed with a single file write and (under FsyncAlways) a
// single fsync. The first appender to join is the leader and performs the
// commit; followers park on done.
type batch struct {
	buf   []byte
	count int
	full  chan struct{} // closed when count reaches the batch cap
	done  chan struct{} // closed once the batch is committed or rejected
	// goal, when > 0, is the adaptive accumulation target set by the
	// leader before it waits; grown is closed (once) when count reaches
	// it, waking the leader early. Both are guarded by Log.bmu.
	goal       int
	grown      chan struct{}
	grownFired bool
	base       uint64 // offset of the batch's first record (valid when err == nil)
	err        error
	// offsetsStand marks the fsync-failed-and-cannot-truncate corner: the
	// records are in the file and will be replayed after a crash, so their
	// offsets are reported alongside err (see Append's contract).
	offsetsStand bool
}

// failure is a latched permanent error (see Log.failed).
type failure struct{ err error }

// fsyncFailLimit is how many consecutive fsync failures latch the log as
// failed: one failure can be a transient blip, a streak is a dying disk.
const fsyncFailLimit = 3

// Log is the append-only document log. Append/Sync/Close and the reader API
// are safe for concurrent use; there is a single writer (the Log itself).
type Log struct {
	opt Options

	// bmu guards the open batch that appenders join; mu guards the file
	// and segment state. A batch leader takes bmu only briefly (join,
	// seal) and mu for the whole commit — so while one batch is inside
	// its fsync under mu, the next batch accumulates under bmu.
	bmu     sync.Mutex
	pending *batch

	mu     sync.Mutex
	segs   []*segment
	f      segFile // active segment, positioned at its end
	next   uint64  // next offset to assign
	dirty  bool    // active segment has unsynced appends
	closed bool

	appends, appendErrs, syncs, rotations, retired int64

	fsyncErrs      int64 // total failed fsyncs of the active segment
	lastSyncErr    error
	syncFailStreak int // consecutive failed fsyncs; reset on success

	// failed latches a persistent fsync failure so appends fail fast
	// instead of silently degrading durability (read lock-free on the
	// append path).
	failed atomic.Pointer[failure]

	stop chan struct{}
	wg   sync.WaitGroup

	fsyncLat   obs.Histogram
	batchSizes obs.Histogram // records per committed group-commit batch

	// Adaptive group-commit state (guarded by mu): the fsync-latency EWMA
	// that sizes the accumulation window, and the previous committed
	// batch's record count as the concurrency signal.
	fsyncEWMA  time.Duration
	lastBatchN int
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	Segments        int
	Bytes           int64
	FirstOffset     uint64
	NextOffset      uint64
	Appends         int64
	AppendErrors    int64
	Syncs           int64
	Rotations       int64
	RetiredSegments int64
	// FsyncErrors counts failed fsyncs of the active segment;
	// LastFsyncError is the most recent one ("" = none). Failed reports
	// the log has latched a persistent fsync failure and rejects appends.
	FsyncErrors    int64
	LastFsyncError string
	Failed         bool
}

func (l *Log) logf(format string, args ...any) {
	if l.opt.Logf != nil {
		l.opt.Logf(format, args...)
	}
}

// Open opens (or creates) the log in opt.Dir, recovering from a previous
// crash: every segment is scanned and the log is truncated at the first
// invalid record (torn tail). The returned log is positioned to append.
func Open(opt Options) (*Log, error) {
	if opt.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	pol, err := ParseFsyncPolicy(string(opt.Fsync))
	if err != nil {
		return nil, err
	}
	opt.Fsync = pol
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{opt: opt, stop: make(chan struct{})}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		if err := l.createSegment(l.next); err != nil {
			return nil, err
		}
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(last.size, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.f = wrapSegFile(f)
	}
	if pol == FsyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// recover scans the segment directory, truncating the log at the first
// invalid record and deleting any unreachable later segments.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return err
	}
	type found struct {
		base uint64
		path string
	}
	var files []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			l.logf("wal: ignoring unparsable segment name %s", name)
			continue
		}
		files = append(files, found{base, filepath.Join(l.opt.Dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].base < files[j].base })

	drop := func(from int, why string) {
		for _, f := range files[from:] {
			l.logf("wal: removing unreachable segment %s (%s)", f.path, why)
			os.Remove(f.path)
		}
	}
	for i, f := range files {
		if i > 0 && f.base != l.next {
			drop(i, fmt.Sprintf("base %d does not continue offset %d", f.base, l.next))
			break
		}
		sc, err := scanSegment(f.path, f.base, l.opt.maxRecordBytes())
		if err != nil {
			return err
		}
		if !sc.headerOK {
			drop(i, "invalid segment header")
			break
		}
		if sc.torn {
			l.logf("wal: truncating torn tail of %s at %d bytes (%d valid records)",
				f.path, sc.validSize, sc.records)
			if err := os.Truncate(f.path, sc.validSize); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", f.path, err)
			}
		}
		info, ierr := os.Stat(f.path)
		created := time.Now()
		if ierr == nil {
			created = info.ModTime()
		}
		// ModTime is when the segment was last written, i.e. its newest
		// record's age — the right basis for both rotation and retention
		// after a restart.
		l.segs = append(l.segs, &segment{
			base: f.base, records: sc.records, size: sc.validSize, path: f.path,
			created: created, lastAppend: created,
		})
		l.next = f.base + sc.records
		if sc.torn {
			drop(i+1, "follows a torn segment")
			break
		}
	}
	return nil
}

// segScan is the result of scanning one segment file.
type segScan struct {
	headerOK  bool
	records   uint64
	validSize int64
	torn      bool // trailing bytes past validSize are invalid
}

// scanSegment validates a segment sequentially: header, then records until
// the first invalid one.
func scanSegment(path string, wantBase uint64, maxRecord int) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return segScan{torn: true}, nil // shorter than a header: unusable
	}
	if [8]byte(hdr[:8]) != segMagic || beU64(hdr[8:]) != wantBase {
		return segScan{torn: true}, nil
	}
	sc := segScan{headerOK: true, validSize: headerSize}
	var rh [recHdrSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			sc.torn = err == io.ErrUnexpectedEOF
			return sc, nil
		}
		plen := int(beU32(rh[:4]))
		if plen <= 0 || plen > maxRecord {
			sc.torn = true
			return sc, nil
		}
		if cap(buf) < plen {
			buf = make([]byte, plen)
		}
		if _, err := io.ReadFull(f, buf[:plen]); err != nil {
			sc.torn = true
			return sc, nil
		}
		if crc32.Checksum(buf[:plen], castagnoli) != beU32(rh[4:]) {
			sc.torn = true
			return sc, nil
		}
		sc.records++
		sc.validSize += recHdrSize + int64(plen)
	}
}

// createSegment seals nothing and opens a fresh active segment at base.
func (l *Log) createSegment(base uint64) error {
	path := filepath.Join(l.opt.Dir, fmt.Sprintf("%016x%s", base, segSuffix))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], segMagic[:])
	putU64(hdr[8:], base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	syncDir(l.opt.Dir)
	l.f = wrapSegFile(f)
	now := time.Now()
	l.segs = append(l.segs, &segment{base: base, size: headerSize, path: path, created: now, lastAppend: now})
	return nil
}

// Append appends one document and returns its offset. The document is on
// disk (modulo the fsync policy) before Append returns; a failed append
// assigns no offset and leaves the log consistent — under FsyncAlways a
// record whose fsync fails is truncated back out, unless that truncation
// itself fails, in which case the record (and its offset) stand and the
// error is still returned: the caller sees a rejected append that may
// nevertheless be replayed, the at-least-once-safe direction.
//
// Concurrent Appends group-commit: their records share one file write and
// (under FsyncAlways) one fsync, so durable throughput scales with the
// number of concurrent publishers instead of paying a private fsync each.
// A batch commits or fails as a unit — a failed fsync rejects every append
// in the batch.
func (l *Log) Append(doc []byte) (uint64, error) {
	return l.AppendAsync(doc).Wait()
}

// AppendTraced is Append with span recording: when tc is non-nil and the
// fsync policy is FsyncAlways, the wait for stable storage is recorded as
// an "fsync_wait" child span of parent, and parent gains a "batch_size"
// attribute with the number of records that shared the commit (under the
// other policies the append returns before any sync, so there is no wait
// to record). A nil tc selects the plain path.
func (l *Log) AppendTraced(doc []byte, tc *trace.Ctx, parent trace.SpanID) (uint64, error) {
	p := l.AppendAsync(doc)
	if l.opt.Fsync != FsyncAlways {
		return p.Wait()
	}
	fsSpan := tc.StartSpan("fsync_wait", parent)
	off, err := p.Wait()
	tc.EndSpan(fsSpan)
	tc.SetAttr(parent, "batch_size", int64(p.BatchSize()))
	return off, err
}

// Pending is an in-flight append handed out by AppendAsync: the document
// has joined a group-commit batch but is not yet on disk. Wait blocks until
// the batch commits (or is rejected) and returns the record's offset.
type Pending struct {
	l   *Log
	b   *batch
	idx int   // record index within the batch
	err error // join-time rejection (b == nil)
}

// AppendAsync stages one document for the next group-commit batch and
// returns without waiting for the commit. The caller may overlap other work
// (e.g. filtering the document) with the batch's accumulation and fsync,
// then call Wait to learn the outcome. Safe for concurrent use; records
// within a batch are ordered by join time.
func (l *Log) AppendAsync(doc []byte) *Pending {
	if len(doc) == 0 {
		return &Pending{err: errors.New("wal: empty document")}
	}
	if len(doc) > l.opt.maxRecordBytes() {
		return &Pending{err: fmt.Errorf("wal: document %d bytes exceeds record limit %d", len(doc), l.opt.maxRecordBytes())}
	}
	if f := l.failed.Load(); f != nil {
		return &Pending{err: fmt.Errorf("wal: log failed: %w", f.err)}
	}
	l.bmu.Lock()
	b := l.pending
	if b == nil {
		b = &batch{full: make(chan struct{}), done: make(chan struct{})}
		l.pending = b
	}
	idx := b.count
	b.count++
	var rh [recHdrSize]byte
	putU32(rh[:4], uint32(len(doc)))
	putU32(rh[4:], crc32.Checksum(doc, castagnoli))
	b.buf = append(append(b.buf, rh[:]...), doc...)
	if b.count >= l.opt.batchMaxRecords() {
		l.pending = nil // batch is full: stop accepting joiners
		close(b.full)
	}
	if b.goal > 0 && b.count >= b.goal && !b.grownFired {
		b.grownFired = true
		close(b.grown)
	}
	l.bmu.Unlock()
	return &Pending{l: l, b: b, idx: idx}
}

// Wait blocks until the append's batch has committed and returns the
// record's offset. The first appender of a batch is the leader and performs
// the commit inside its Wait; followers just park until the leader closes
// the batch's done channel.
func (p *Pending) Wait() (uint64, error) {
	if p.b == nil {
		return 0, p.err
	}
	if p.idx == 0 {
		p.l.commit(p.b)
	} else {
		<-p.b.done
	}
	if p.b.err != nil && !p.b.offsetsStand {
		return 0, p.b.err
	}
	return p.b.base + uint64(p.idx), p.b.err
}

// BatchSize returns how many records shared this append's batch. Only
// meaningful after Wait returns (the batch is sealed by then).
func (p *Pending) BatchSize() int {
	if p.b == nil {
		return 0
	}
	return p.b.count
}

// maxAdaptiveBatchWait caps the derived accumulation window so a slow disk
// (or a cold EWMA polluted by a latency spike) cannot stall commits.
const maxAdaptiveBatchWait = 5 * time.Millisecond

// batchWaitLocked picks the group-commit accumulation window; staged is how
// many records the open batch already holds. An explicit BatchMaxWait
// overrides everything (negative disables waiting). Otherwise the window
// adapts: when fsync dominates commit cost (FsyncAlways), the previous
// batch proved concurrent appenders exist (it coalesced ≥2 records), and
// this batch has not yet caught up to that size — i.e. there is plausibly
// still someone to wait for — the leader waits half the observed
// fsync-latency EWMA, long enough to amortize the fsync, short enough not
// to dominate latency. Sequential workloads see lastBatchN == 1 and never
// wait; a closed loop of appenders that all staged during the lock handoff
// sees staged >= lastBatchN and never waits either.
func (l *Log) batchWaitLocked(staged int) time.Duration {
	if w := l.opt.BatchMaxWait; w != 0 {
		if w < 0 {
			return 0
		}
		return w
	}
	if l.opt.Fsync != FsyncAlways || l.lastBatchN < 2 || staged >= l.lastBatchN {
		return 0
	}
	w := l.fsyncEWMA / 2
	if w > maxAdaptiveBatchWait {
		w = maxAdaptiveBatchWait
	}
	return w
}

// commit is run by the batch leader: it acquires the file lock — blocking
// behind the previous batch's fsync, which is the accumulation window that
// lets followers pile in — seals the batch, and commits it with one write
// and one fsync.
func (l *Log) commit(b *batch) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Deferred after Unlock so it runs first: followers wake while this
	// leader still holds the file lock, giving them a head start joining
	// the next batch before its leader can seal it.
	defer close(b.done)
	// Let the previous batch's just-woken followers run before sealing:
	// without this, an idle disk lets the leader seal a near-empty batch
	// while the rest of a closed loop of publishers is still waking up.
	runtime.Gosched()
	l.bmu.Lock()
	wait := l.batchWaitLocked(b.count)
	var grown chan struct{}
	if wait > 0 && l.opt.BatchMaxWait == 0 {
		// Adaptive window: arm an early exit so the wait ends the moment
		// the batch catches up to the previous batch's size instead of
		// sleeping out the whole window.
		b.goal = l.lastBatchN
		b.grown = make(chan struct{})
		grown = b.grown
	}
	l.bmu.Unlock()
	if wait > 0 {
		t := time.NewTimer(wait)
		select {
		case <-b.full:
		case <-grown: // nil under a static window: never fires
		case <-t.C:
		}
		t.Stop()
	}
	// Seal: late arrivals start a new batch with their own leader.
	l.bmu.Lock()
	if l.pending == b {
		l.pending = nil
	}
	n := b.count
	l.bmu.Unlock()
	l.lastBatchN = n

	if l.closed {
		b.err = ErrClosed
		return
	}
	active := l.segs[len(l.segs)-1]
	if active.size >= l.opt.segmentBytes() ||
		(l.opt.SegmentAge > 0 && active.records > 0 && time.Since(active.created) >= l.opt.SegmentAge) {
		if err := l.rotateLocked(); err != nil {
			l.appendErrs += int64(n)
			b.err = err
			return
		}
		active = l.segs[len(l.segs)-1]
	}
	wn, err := l.f.Write(b.buf)
	if err != nil {
		l.appendErrs += int64(n)
		if wn > 0 {
			// Undo the partial write so the on-disk tail stays valid.
			if terr := l.f.Truncate(active.size); terr == nil {
				l.f.Seek(active.size, io.SeekStart)
			} else {
				l.logf("wal: cannot undo partial batch write (%v); recovery will truncate it", terr)
			}
		}
		b.err = err
		return
	}
	if l.opt.Fsync == FsyncAlways {
		if serr := l.syncLocked(true); serr != nil {
			// The batch reached the file but not stable storage. Undo it so
			// the failed appends assign no offsets: the server rejects the
			// publishes, and surviving records would be replayed to durable
			// subscribers as documents nobody accepted. The whole batch is
			// rejected — offsets are assigned contiguously at commit, so a
			// partial accept would leave holes.
			l.appendErrs += int64(n)
			b.err = serr
			if terr := l.f.Truncate(active.size); terr != nil {
				l.logf("wal: cannot undo batch after failed fsync (%v); offsets %d-%d stand and may be redelivered",
					terr, l.next, l.next+uint64(n)-1)
				b.offsetsStand = true
				// Fall through: the records are in the file, so the offsets
				// must advance or the next batch would overwrite them.
			} else {
				l.f.Seek(active.size, io.SeekStart)
				return
			}
		}
	}
	active.size += int64(len(b.buf))
	active.records += uint64(n)
	active.lastAppend = time.Now()
	b.base = l.next
	l.next += uint64(n)
	l.appends += int64(n)
	l.batchSizes.Observe(float64(n))
	if l.opt.Fsync == FsyncInterval {
		l.dirty = true
	}
}

// rotateLocked seals the active segment (fsync + close) and opens the next.
// l.f is nil when a previous rotation sealed the segment but failed in
// createSegment (e.g. transient disk-full); a retry then proceeds straight to
// segment creation instead of failing forever on the nil file.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
		l.dirty = false
	}
	if err := l.createSegment(l.next); err != nil {
		return err
	}
	l.rotations++
	l.applyRetentionLocked()
	return nil
}

// applyRetentionLocked deletes sealed segments from the front per the
// retention options. The active segment is never deleted.
func (l *Log) applyRetentionLocked() {
	if l.opt.RetentionBytes <= 0 && l.opt.RetentionAge <= 0 {
		return
	}
	for len(l.segs) > 1 {
		oldest := l.segs[0]
		drop := false
		if l.opt.RetentionBytes > 0 {
			var total int64
			for _, s := range l.segs {
				total += s.size
			}
			drop = total > l.opt.RetentionBytes
		}
		if !drop && l.opt.RetentionAge > 0 && time.Since(oldest.lastAppend) > l.opt.RetentionAge {
			drop = true
		}
		if !drop {
			break
		}
		l.logf("wal: retention deleting segment %s (offsets %d-%d)",
			oldest.path, oldest.base, oldest.base+oldest.records-1)
		os.Remove(oldest.path)
		l.segs = l.segs[1:]
		l.retired++
	}
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked(true)
}

func (l *Log) syncLocked(force bool) error {
	if l.f == nil || (!force && !l.dirty) {
		return nil
	}
	t := time.Now()
	err := l.f.Sync()
	d := time.Since(t)
	l.fsyncLat.Observe(d.Seconds())
	l.syncs++
	if err == nil {
		// EWMA (α = 1/8) of successful fsync latency feeds the adaptive
		// group-commit window; failed syncs are excluded so a dying disk's
		// timeouts don't inflate the accumulation window.
		if l.fsyncEWMA == 0 {
			l.fsyncEWMA = d
		} else {
			l.fsyncEWMA += (d - l.fsyncEWMA) / 8
		}
		l.dirty = false
		l.syncFailStreak = 0
		return nil
	}
	l.fsyncErrs++
	l.lastSyncErr = err
	l.syncFailStreak++
	if l.syncFailStreak >= fsyncFailLimit && l.failed.Load() == nil {
		// A streak of failed fsyncs is a dying disk, not a blip. Latch the
		// failure so appends fail fast: without this, FsyncInterval would
		// silently degrade to FsyncNever while acking every publish.
		l.failed.Store(&failure{err: err})
		l.logf("wal: %d consecutive fsync failures; latching log as failed: %v", l.syncFailStreak, err)
	}
	return err
}

func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.fsyncEvery())
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.syncLocked(false); err != nil {
					l.logf("wal: interval fsync: %v", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close fsyncs and closes the active segment. Readers and appends fail with
// ErrClosed afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// FirstOffset returns the offset of the oldest retained record (equal to
// NextOffset when the log is empty).
func (l *Log) FirstOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.next
	}
	return l.segs[0].base
}

// NextOffset returns the offset the next append will be assigned.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:        len(l.segs),
		NextOffset:      l.next,
		FirstOffset:     l.next,
		Appends:         l.appends,
		AppendErrors:    l.appendErrs,
		Syncs:           l.syncs,
		Rotations:       l.rotations,
		RetiredSegments: l.retired,
		FsyncErrors:     l.fsyncErrs,
		Failed:          l.failed.Load() != nil,
	}
	if l.lastSyncErr != nil {
		st.LastFsyncError = l.lastSyncErr.Error()
	}
	if len(l.segs) > 0 {
		st.FirstOffset = l.segs[0].base
	}
	for _, s := range l.segs {
		st.Bytes += s.size
	}
	return st
}

// FsyncLatency returns the fsync latency histogram snapshot (seconds).
func (l *Log) FsyncLatency() obs.Snapshot { return l.fsyncLat.Snapshot() }

// BatchSizes returns the group-commit batch-size histogram snapshot
// (records per committed batch).
func (l *Log) BatchSizes() obs.Snapshot { return l.batchSizes.Snapshot() }

// Failed returns the latched persistent-fsync-failure error, or nil while
// the log is healthy. A failed log rejects every append; the operator must
// restart the broker (after fixing the disk) to recover.
func (l *Log) Failed() error {
	if f := l.failed.Load(); f != nil {
		return f.err
	}
	return nil
}

// VerifyResult summarizes a read-only integrity check of a log directory.
type VerifyResult struct {
	Segments    int
	Records     uint64
	FirstOffset uint64
	NextOffset  uint64
	Bytes       int64
	// Torn reports whether any invalid bytes follow the valid prefix (a
	// crash mid-append, or corruption); Open would truncate them.
	Torn bool
}

// Verify scans dir read-only and reports the valid record range and whether
// a torn tail (or unreachable segments) would be truncated by Open. It does
// not modify any file, so it is safe to run against a live log for tests
// and tooling.
func Verify(dir string) (VerifyResult, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return VerifyResult{}, err
	}
	type found struct {
		base uint64
		path string
	}
	var files []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue
		}
		files = append(files, found{base, filepath.Join(dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].base < files[j].base })
	var res VerifyResult
	first := true
	for i, f := range files {
		if !first && f.base != res.NextOffset {
			res.Torn = true
			break
		}
		sc, err := scanSegment(f.path, f.base, (&Options{}).maxRecordBytes())
		if err != nil {
			return res, err
		}
		if !sc.headerOK {
			res.Torn = true
			break
		}
		if first {
			res.FirstOffset = f.base
			first = false
		}
		res.Segments++
		res.Records += sc.records
		res.Bytes += sc.validSize
		res.NextOffset = f.base + sc.records
		if sc.torn {
			res.Torn = true
			break
		}
		if sc.records == 0 && i < len(files)-1 {
			// An empty sealed segment is only left behind by a crash.
			res.Torn = true
			break
		}
	}
	return res, nil
}

// syncDir fsyncs a directory so a new file's name survives a crash
// (best-effort: some platforms reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func beU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func beU64(b []byte) uint64 {
	return uint64(beU32(b[:4]))<<32 | uint64(beU32(b[4:8]))
}

func putU64(b []byte, v uint64) {
	putU32(b[:4], uint32(v>>32))
	putU32(b[4:8], uint32(v))
}
