package xpushstream

import (
	"repro/internal/obs"
)

// The observability primitives are re-exported for engine users, so a
// broker embedding the engine does not import internal packages.
type (
	// Registry holds named metrics and encodes them in Prometheus text
	// format; Registry.NewMux serves /metrics and /healthz.
	Registry = obs.Registry
	// Counter is a monotonically increasing atomic counter.
	Counter = obs.Counter
	// Gauge is an atomic value that can go up and down.
	Gauge = obs.Gauge
	// Histogram is a log-bucketed latency histogram.
	Histogram = obs.Histogram
	// LatencySnapshot is a point-in-time histogram copy (quantiles,
	// buckets, sum, count); Stats.FilterLatency is one.
	LatencySnapshot = obs.Snapshot
	// LatencySummaryData is the p50/p90/p99/max quantile summary.
	LatencySummaryData = obs.Summary
)

// NewRegistry returns an empty metrics registry. Register engine stats with
// RegisterMetrics, serve it with Registry.NewMux (GET /metrics + /healthz),
// or encode it directly with Registry.WritePrometheus.
func NewRegistry() *Registry { return obs.NewRegistry() }

// StatsSource is anything that can report engine statistics: *Engine,
// *Pool, *ShardedEngine, or a caller-supplied closure (see StatsFunc).
type StatsSource interface {
	Stats() Stats
}

// StatsFunc adapts a function to StatsSource (e.g. to take a lock around an
// engine that is concurrently mutated with AddQueries).
type StatsFunc func() Stats

// Stats implements StatsSource.
func (f StatsFunc) Stats() Stats { return f() }

// RegisterMetrics registers the full engine metric set on a registry, pulled
// from src at scrape time. All metric names start with the prefix
// ("xpush" when empty):
//
//	<p>_documents_total, <p>_events_total, <p>_bytes_total,
//	<p>_matches_total, <p>_table_lookups_total, <p>_table_hits_total,
//	<p>_flushes_total, <p>_mixed_content_events_total   (counters)
//	<p>_states, <p>_topdown_states, <p>_avg_state_size,
//	<p>_hit_ratio, <p>_window_hit_ratio, <p>_window_states_added (gauges)
//	<p>_filter_latency_seconds            (summary: p50/p90/p99 quantiles)
//	<p>_filter_latency_seconds_max        (gauge)
//	<p>_filter_latency_histogram_seconds  (histogram: log buckets)
//
// Stats() must be safe to call at scrape time; the built-in engines
// guarantee this even while filtering.
func RegisterMetrics(r *Registry, prefix string, src StatsSource) {
	if prefix == "" {
		prefix = "xpush"
	}
	p := prefix + "_"
	counter := func(name, help string, f func(Stats) int64) {
		r.CounterFunc(p+name, help, func() int64 { return f(src.Stats()) })
	}
	gauge := func(name, help string, f func(Stats) float64) {
		r.GaugeFunc(p+name, help, func() float64 { return f(src.Stats()) })
	}
	counter("documents_total", "XML documents filtered", func(s Stats) int64 { return s.Documents })
	counter("events_total", "SAX events dispatched to the machine", func(s Stats) int64 { return s.Events })
	counter("bytes_total", "stream bytes processed", func(s Stats) int64 { return s.Bytes })
	counter("matches_total", "(document, filter) match pairs reported", func(s Stats) int64 { return s.Matches })
	counter("table_lookups_total", "transition-table lookups", func(s Stats) int64 { return s.Lookups })
	counter("table_hits_total", "transition-table hits", func(s Stats) int64 { return s.Hits })
	counter("flushes_total", "MaxStates cache flushes", func(s Stats) int64 { return s.Flushes })
	counter("mixed_content_events_total", "mixed element/text content violations", func(s Stats) int64 { return s.MixedContentEvents })
	gauge("states", "lazily materialised machine states", func(s Stats) float64 { return float64(s.States) })
	gauge("topdown_states", "top-down (navigation) states", func(s Stats) float64 { return float64(s.TopDownStates) })
	gauge("avg_state_size", "mean AFA states per machine state", func(s Stats) float64 { return s.AvgStateSize })
	gauge("hit_ratio", "cumulative transition-table hit ratio (Fig. 8)", func(s Stats) float64 { return s.HitRatio })
	gauge("window_hit_ratio", "hit ratio over the most recent documents (warm-machine view)", func(s Stats) float64 { return s.WindowHitRatio })
	gauge("window_states_added", "machine states added over the most recent documents", func(s Stats) float64 { return float64(s.WindowStatesAdded) })
	r.SummaryFunc(p+"filter_latency_seconds", "per-document filter latency quantiles",
		[]float64{0.5, 0.9, 0.99}, func() obs.Snapshot { return src.Stats().FilterLatency })
	gauge("filter_latency_seconds_max", "maximum per-document filter latency", func(s Stats) float64 { return s.FilterLatency.Max })
	r.HistogramFunc(p+"filter_latency_histogram_seconds", "per-document filter latency (log buckets)",
		func() obs.Snapshot { return src.Stats().FilterLatency })
}
