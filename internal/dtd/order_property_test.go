package dtd

import "testing"

// Order-relation sanity on realistic DTDs: ≺ must be irreflexive and
// antisymmetric over every label pair, and transitive where defined (a
// partial order, as Sec. 5 requires — an unsound order would make the order
// optimization drop true matches).
func checkPartialOrder(t *testing.T, d *DTD) {
	t.Helper()
	o := d.SiblingOrder()
	names := d.ElementNames()
	// Attributes participate too.
	var labels []string
	labels = append(labels, names...)
	for _, n := range names {
		for _, a := range d.Element(n).Attrs {
			labels = append(labels, "@"+a.Name)
		}
	}
	for _, a := range labels {
		if o.Precedes(a, a) {
			t.Errorf("irreflexivity violated: %s ≺ %s", a, a)
		}
		for _, b := range labels {
			if a != b && o.Precedes(a, b) && o.Precedes(b, a) {
				t.Errorf("antisymmetry violated: %s and %s", a, b)
			}
			for _, c := range labels {
				if o.Precedes(a, b) && o.Precedes(b, c) && !o.Precedes(a, c) {
					// Transitivity can only fail between element
					// labels (the attribute rule is built in).
					if a[0] != '@' && b[0] != '@' && c[0] != '@' {
						t.Errorf("transitivity violated: %s ≺ %s ≺ %s but not %s ≺ %s",
							a, b, c, a, c)
					}
				}
			}
		}
	}
}

func TestSiblingOrderIsPartialOrderSequences(t *testing.T) {
	checkPartialOrder(t, MustParse(`
<!ELEMENT r (a, b, c, d)>
<!ELEMENT a (x?, y?)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (y, x)>
<!ELEMENT d (#PCDATA)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
<!ATTLIST r id CDATA #REQUIRED>
`))
}

func TestSiblingOrderIsPartialOrderMixedShapes(t *testing.T) {
	checkPartialOrder(t, MustParse(`
<!ELEMENT r ((a | b), (c, d)*, e?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (c)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
<!ELEMENT e (a, d)>
`))
}

func TestConflictingParentsStayUnordered(t *testing.T) {
	// x before y under p, y before x under q: neither direction global.
	d := MustParse(`
<!ELEMENT r (p, q)>
<!ELEMENT p (x, y)>
<!ELEMENT q (y, x)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
`)
	checkPartialOrder(t, d)
	o := d.SiblingOrder()
	if o.Precedes("x", "y") || o.Precedes("y", "x") {
		t.Error("conflicting parents must cancel")
	}
	// But the r-level order survives.
	if !o.Precedes("p", "q") {
		t.Error("p ≺ q should hold")
	}
}
