package obs

import "time"

// processStart is captured at program init so every registry exporting
// process metrics reports the same start time.
var processStart = time.Now()

// RegisterProcessMetrics adds the standard process series Prometheus needs
// for restart detection and uptime queries (`time() -
// process_start_time_seconds`, resets of the uptime gauge).
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc("process_start_time_seconds",
		"unix time the process started", func() float64 {
			return float64(processStart.UnixNano()) / 1e9
		})
	r.GaugeFunc("process_uptime_seconds",
		"seconds since the process started", func() float64 {
			return time.Since(processStart).Seconds()
		})
}
