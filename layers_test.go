package xpushstream

import (
	"bytes"
	"fmt"
	"testing"
)

func TestAddQueries(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]"}, Config{TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the base machine.
	if _, err := e.FilterDocument([]byte("<m><v>1</v></m>")); err != nil {
		t.Fatal(err)
	}
	baseStates := e.Stats().States

	if err := e.AddQueries([]string{"/m[v=2]", "/m[w=3]"}); err != nil {
		t.Fatal(err)
	}
	if e.NumQueries() != 3 || e.NumLayers() != 2 {
		t.Fatalf("queries=%d layers=%d", e.NumQueries(), e.NumLayers())
	}
	got, err := e.FilterDocument([]byte("<m><v>2</v><w>3</w></m>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("matches = %v", got)
	}
	got, _ = e.FilterDocument([]byte("<m><v>1</v></m>"))
	if fmt.Sprint(got) != "[0]" {
		t.Fatalf("matches = %v", got)
	}
	// The base machine's states were not discarded by the insertion.
	if e.Stats().States < baseStates {
		t.Errorf("base states lost: %d -> %d", baseStates, e.Stats().States)
	}
}

func TestAddQueriesErrors(t *testing.T) {
	e, err := Compile([]string{"/a"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddQueries([]string{"not xpath"}); err == nil {
		t.Error("bad added query must fail")
	}
	if e.NumQueries() != 1 || e.NumLayers() != 1 {
		t.Error("failed add must not change the engine")
	}
	if err := e.AddQueries(nil); err != nil {
		t.Errorf("empty add: %v", err)
	}
}

func TestRemoveQuery(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]", "/m[v=1 or v=2]", "//m"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}
	got, err := e.FilterDocument([]byte("<m><v>1</v></m>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 2]" {
		t.Fatalf("matches = %v", got)
	}
	if err := e.RemoveQuery(99); err == nil {
		t.Error("out-of-range removal must fail")
	}
}

func TestConsolidate(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddQueries([]string{"/m[v=2]"}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQueries([]string{"/m[v=3]", "/m[v=4]"}); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}
	mapping, err := e.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(mapping) != "[0 -1 1 2]" {
		t.Fatalf("mapping = %v", mapping)
	}
	if e.NumLayers() != 1 || e.NumQueries() != 3 {
		t.Fatalf("layers=%d queries=%d", e.NumLayers(), e.NumQueries())
	}
	got, err := e.FilterDocument([]byte("<m><v>3</v></m>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" { // /m[v=3] is index 1 after compaction
		t.Fatalf("matches = %v", got)
	}
	got, _ = e.FilterDocument([]byte("<m><v>2</v></m>"))
	if len(got) != 0 {
		t.Fatalf("removed filter still fires: %v", got)
	}
}

func TestLayeredStream(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddQueries([]string{"/m[v=2]"}); err != nil {
		t.Fatal(err)
	}
	var per []string
	err = e.FilterBytes([]byte("<m><v>1</v></m><m><v>2</v></m>"), func(m []int) {
		per = append(per, fmt.Sprint(m))
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(per) != "[[0] [1]]" {
		t.Fatalf("per-doc = %v", per)
	}
	// Aggregated stats count the stream once.
	if e.Stats().Documents != 2 {
		t.Errorf("documents = %d", e.Stats().Documents)
	}
}

func TestLayeredTraining(t *testing.T) {
	d, err := ParseDTD("<!ELEMENT m (v)><!ELEMENT v (#PCDATA)>")
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile([]string{"/m[v=1]"}, Config{Training: true, DTD: d, TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddQueries([]string{"/m[v=2]"}); err != nil {
		t.Fatal(err)
	}
	got, err := e.FilterDocument([]byte("<m><v>2</v></m>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Fatalf("matches = %v", got)
	}
}

func TestEngineSnapshot(t *testing.T) {
	queries := []string{"/m[v=1]", "/m[v=2]", "//m[w=3]"}
	warm, err := Compile(queries, Config{TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		doc := fmt.Sprintf("<m><v>%d</v><w>%d</w></m>", i%4, i%5)
		if _, err := warm.FilterDocument([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := warm.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cold, err := Compile(queries, Config{TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Replay a document the warm engine saw (i=3: v=3, w=3): every
	// lookup must hit the restored tables.
	got, err := cold.FilterDocument([]byte("<m><v>3</v><w>3</w></m>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[2]" {
		t.Errorf("matches = %v", got)
	}
	if cold.Stats().HitRatio < 0.99 {
		t.Errorf("restored engine hit ratio %.3f", cold.Stats().HitRatio)
	}
	// An unseen value combination is answered correctly too (with lazy
	// construction resuming on top of the snapshot).
	got, err = cold.FilterDocument([]byte("<m><v>2</v><w>3</w></m>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Errorf("matches = %v", got)
	}

	// Mismatched layer structure is rejected.
	layered, _ := Compile(queries[:2], Config{TopDownPruning: true})
	_ = layered.AddQueries(queries[2:])
	if err := layered.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("layer mismatch must be rejected")
	}
	// Mismatched workload is rejected.
	other, _ := Compile([]string{"/x"}, Config{TopDownPruning: true})
	if err := other.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("workload mismatch must be rejected")
	}
}
