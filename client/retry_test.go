package client

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/server"
)

// flakyListener accepts raw TCP and, for the first `drop` connections,
// closes them immediately (a booting broker, or one shedding load); after
// that it answers PING frames like a healthy broker.
type flakyListener struct {
	ln      net.Listener
	drop    int32
	accepts atomic.Int32
}

func startFlakyListener(t *testing.T, drop int32) *flakyListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{ln: ln, drop: drop}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			n := fl.accepts.Add(1)
			if n <= fl.drop {
				nc.Close()
				continue
			}
			go func() {
				defer nc.Close()
				for {
					f, err := server.ReadFrame(nc, 1<<20)
					if err != nil {
						return
					}
					if f.Type == server.FramePing {
						server.WriteFrame(nc, server.FramePong, nil)
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fl
}

// TestDialRetryFlakyListener is the satellite's core scenario: the first
// connections are accepted and instantly dropped; DialRetry with a Ping
// probe must keep retrying and return a healthy client.
func TestDialRetryFlakyListener(t *testing.T) {
	fl := startFlakyListener(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := DialRetry(ctx, fl.ln.Addr().String(), Options{Timeout: 2 * time.Second}, Backoff{
		Min:   5 * time.Millisecond,
		Max:   50 * time.Millisecond,
		Probe: func(c *Client) error { return c.Ping() },
	})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer c.Close()
	if got := fl.accepts.Load(); got < 3 {
		t.Fatalf("expected at least 3 accepts (2 dropped + 1 healthy), got %d", got)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("returned client is not usable: %v", err)
	}
}

// TestDialRetryRefusedThenUp covers the connection-refused regime: no
// listener at all, then one appears mid-retry.
func TestDialRetryRefusedThenUp(t *testing.T) {
	// Reserve an address, then free it so the first dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	up := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			close(up)
			return
		}
		go func() {
			for {
				nc, err := ln2.Accept()
				if err != nil {
					return
				}
				go func() {
					defer nc.Close()
					for {
						f, err := server.ReadFrame(nc, 1<<20)
						if err != nil {
							return
						}
						if f.Type == server.FramePing {
							server.WriteFrame(nc, server.FramePong, nil)
						}
					}
				}()
			}
		}()
		close(up)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := DialRetry(ctx, addr, Options{Timeout: 2 * time.Second}, Backoff{
		Min:   10 * time.Millisecond,
		Max:   100 * time.Millisecond,
		Probe: func(c *Client) error { return c.Ping() },
	})
	<-up
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	c.Close()
}

// TestDialRetryContextBounded: with nothing listening, DialRetry must stop
// when the context expires and report the last dial error.
func TestDialRetryContextBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialRetry(ctx, addr, Options{}, Backoff{Min: 20 * time.Millisecond, Max: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("DialRetry succeeded against a dead address")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should wrap context.DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DialRetry ran %v past a 200ms context", elapsed)
	}
}

// TestDialRetryContextCancelInterruptsBackoff: cancelling the context while
// DialRetryContext is asleep in a long backoff must interrupt the sleep
// promptly — the gate's pool shutdown cannot wait out a multi-second
// reconnect delay.
func TestDialRetryContextCancelInterruptsBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Min=30s guarantees the goroutine is parked in the backoff sleep
		// after the first refused dial, not dialing, when cancel fires.
		_, err := DialRetryContext(ctx, addr, Options{},
			Backoff{Min: 30 * time.Second, Max: 30 * time.Second})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the first dial fail and the sleep start
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error should wrap context.Canceled: %v", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("cancellation took %v to interrupt a 30s backoff sleep", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DialRetryContext did not return within 5s of cancellation")
	}
}

// TestClientRemoteAddr: the accessor reports the broker end of the
// connection (the gate keys per-node state by it).
func TestClientRemoteAddr(t *testing.T) {
	fl := startFlakyListener(t, 0)
	c, err := Dial(fl.ln.Addr().String(), Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, want := c.RemoteAddr().String(), fl.ln.Addr().String(); got != want {
		t.Fatalf("RemoteAddr = %s, want %s", got, want)
	}
}

// TestClientLatchesProtoErr: a PROTO_ERR frame from the server latches its
// reason as the client's terminal error, so version skew surfaces as a
// diagnosable message instead of a bare EOF.
func TestClientLatchesProtoErr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if _, err := server.ReadFrame(nc, 1<<20); err != nil {
			return
		}
		server.WriteFrame(nc, server.FrameProtoErr, []byte("server: unknown frame type 0x03"))
	}()
	c, err := Dial(ln.Addr().String(), Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Ping() // draws the PROTO_ERR and the close
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("connection not closed after PROTO_ERR")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "unknown frame type 0x03") {
		t.Fatalf("Err() = %v, want the latched protocol-error reason", err)
	}
}

// TestDialRetryMaxAttempts: the attempt bound is honored without a context
// deadline.
func TestDialRetryMaxAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	_, err = DialRetry(context.Background(), addr, Options{},
		Backoff{Min: time.Millisecond, Max: 2 * time.Millisecond, MaxAttempts: 3})
	if err == nil {
		t.Fatal("DialRetry succeeded against a dead address")
	}
}

// TestBackoffSchedule pins the delay curve: exponential growth from Min,
// capped at Max, jitter within ±Jitter.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.delay(i); got != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Jitter stays inside the band and actually varies.
	seq := []float64{0, 1, 0.5}
	k := 0
	bj := Backoff{Min: 100 * time.Millisecond, Max: time.Second, Jitter: 0.2,
		rng: func() float64 { v := seq[k%len(seq)]; k++; return v }}
	lo, hi := 80*time.Millisecond, 120*time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 3; i++ {
		d := bj.delay(0)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced no variation")
	}
}
