package workload

import (
	"fmt"
	"sync"
	"testing"
)

func TestDedupShareAndRelease(t *testing.T) {
	d := NewDedup[string]()
	key := d.Register("/a[b]", true)
	if got, ok := d.Resolve("/a[b]"); !ok || got != key {
		t.Fatalf("Resolve = %d,%v want %d,true", got, ok, key)
	}

	s1, reused := d.Subscribe(key, "alice", false)
	if reused {
		t.Fatal("first subscription reported reused")
	}
	s2, reused := d.Subscribe(key, "bob", true)
	if !reused {
		t.Fatal("second subscription not reported reused")
	}
	if s1 == s2 {
		t.Fatal("subscription ids collide")
	}
	if d.UniqueQueries() != 1 || d.Subscriptions() != 2 || d.Hits() != 1 {
		t.Fatalf("stats = %d unique, %d subs, %d hits; want 1,2,1",
			d.UniqueQueries(), d.Subscriptions(), d.Hits())
	}

	// Wrong owner cannot unsubscribe someone else's id.
	if _, _, err := d.Unsubscribe(s1, "mallory"); err == nil {
		t.Fatal("foreign unsubscribe succeeded")
	}

	if _, last, err := d.Unsubscribe(s1, "alice"); err != nil || last {
		t.Fatalf("first unsubscribe: last=%v err=%v", last, err)
	}
	gotKey, last, err := d.Unsubscribe(s2, "bob")
	if err != nil || !last || gotKey != key {
		t.Fatalf("last unsubscribe: key=%d last=%v err=%v", gotKey, last, err)
	}
	if _, ok := d.Resolve("/a[b]"); ok {
		t.Fatal("entry still resolvable after release")
	}
	if d.UniqueQueries() != 0 || d.Subscriptions() != 0 {
		t.Fatalf("registry not empty after release")
	}
}

func TestDedupPinKeepsEntryAlive(t *testing.T) {
	d := NewDedup[string]()
	key := d.Register("/boot", true)
	d.Pin(key)
	s, reused := d.Subscribe(key, "a", false)
	if !reused {
		t.Fatal("subscription to pinned entry should count as reuse")
	}
	if _, last, err := d.Unsubscribe(s, "a"); err != nil || last {
		t.Fatalf("pinned entry released: last=%v err=%v", last, err)
	}
	if d.UniqueQueries() != 1 {
		t.Fatal("pinned entry dropped")
	}
	// Pinned entries with no subscribers still fan out as one match.
	count := 0
	d.Fanout([]uint64{key}, func(_ uint64, pinned bool, nsubs int, _ uint64, _ string, _ bool) {
		if !pinned || nsubs != 0 {
			t.Fatalf("pinned fanout: pinned=%v nsubs=%d", pinned, nsubs)
		}
		count++
	})
	if count != 1 {
		t.Fatalf("pinned fanout visits = %d, want 1", count)
	}
}

func TestDedupUnsharedNeverCoalesces(t *testing.T) {
	d := NewDedup[string]()
	k1 := d.Register("/a", false)
	if _, ok := d.Resolve("/a"); ok {
		t.Fatal("unshared entry resolvable")
	}
	k2 := d.Register("/a", false)
	if k1 == k2 {
		t.Fatal("unshared entries share a key")
	}
	if _, reused := d.Subscribe(k2, "a", false); reused {
		t.Fatal("unshared subscribe counted as reuse")
	}
	if d.Hits() != 0 {
		t.Fatal("unshared path counted dedup hits")
	}
}

func TestDedupUnsubscribeOwner(t *testing.T) {
	d := NewDedup[string]()
	ka := d.Register("/a", true)
	kb := d.Register("/b", true)
	d.Subscribe(ka, "alice", false)
	d.Subscribe(ka, "bob", false)
	d.Subscribe(kb, "alice", true)
	released := d.UnsubscribeOwner("alice")
	if len(released) != 1 || released[0] != kb {
		t.Fatalf("released = %v, want [%d]", released, kb)
	}
	if d.Subscriptions() != 1 || d.UniqueQueries() != 1 {
		t.Fatalf("after owner teardown: %d subs, %d unique; want 1,1",
			d.Subscriptions(), d.UniqueQueries())
	}
}

func TestDedupFanoutSkipsUnknownKeys(t *testing.T) {
	d := NewDedup[string]()
	key := d.Register("/a", true)
	d.Subscribe(key, "a", false)
	visits := 0
	d.Fanout([]uint64{key, 999}, func(uint64, bool, int, uint64, string, bool) { visits++ })
	if visits != 1 {
		t.Fatalf("visits = %d, want 1", visits)
	}
}

func TestDedupConcurrentChurn(t *testing.T) {
	d := NewDedup[int]()
	const owners = 8
	var wg sync.WaitGroup
	for o := 0; o < owners; o++ {
		wg.Add(1)
		go func(owner int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				canon := fmt.Sprintf("/q%d", i%5)
				key, ok := d.Resolve(canon)
				if !ok {
					key = d.Register(canon, true)
				}
				sub, _ := d.Subscribe(key, owner, i%2 == 0)
				d.Fanout([]uint64{key}, func(uint64, bool, int, uint64, int, bool) {})
				if i%3 == 0 {
					d.Unsubscribe(sub, owner)
				}
			}
			d.UnsubscribeOwner(owner)
		}(o)
	}
	wg.Wait()
	if d.Subscriptions() != 0 {
		t.Fatalf("subscriptions leaked: %d", d.Subscriptions())
	}
}
