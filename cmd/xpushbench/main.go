// Command xpushbench regenerates the figures of the paper's evaluation
// section (Sec. 7, Figs. 5-11, plus the abstract's throughput claims).
//
// Usage:
//
//	xpushbench -fig all -scale default -dataset protein
//	xpushbench -fig 5a,6a,7a -scale paper -v
//
// Figures sharing a parameter sweep (e.g. 5a/6a/7a) reuse one run. See
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/datagen"
)

func main() {
	fig := flag.String("fig", "all", "comma-separated figure ids ("+strings.Join(bench.FigureIDs, ",")+") or 'all'")
	scaleName := flag.String("scale", "default", "experiment scale: smoke, default, or paper")
	dataset := flag.String("dataset", "protein", "dataset: protein or nasa")
	verbose := flag.Bool("v", false, "log every measured point")
	out := flag.String("o", "", "write output to a file instead of stdout")
	csvPath := flag.String("csv", "", "additionally dump raw sweep rows as CSV to this file")
	jsonPath := flag.String("json", "", "additionally dump sweep rows and abstract results as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run, post-GC) to this file")
	flag.Parse()

	scale, ok := bench.Scales[*scaleName]
	if !ok {
		fatalf("unknown scale %q (smoke, default, paper)", *scaleName)
	}
	ds, ok := datagen.ByName(*dataset)
	if !ok {
		fatalf("unknown dataset %q (protein, nasa)", *dataset)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	r := bench.NewRunner(ds, scale, w)
	r.Verbose = *verbose
	start := time.Now()
	if *fig == "all" {
		if err := r.All(); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, id := range strings.Split(*fig, ",") {
			if err := r.Figure(strings.TrimSpace(id)); err != nil {
				fatalf("%v", err)
			}
		}
	}
	fmt.Fprintf(w, "\ntotal bench time: %v\n", time.Since(start).Round(time.Millisecond))
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := r.WriteCSV(f); err != nil {
			fatalf("%v", err)
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			fatalf("%v", err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		runtime.GC() // settle retained heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("write heap profile: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xpushbench: "+format+"\n", args...)
	os.Exit(1)
}
