package sax

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
)

// StdParse produces the same modified SAX event stream as Scanner, but built
// on encoding/xml. It serves two purposes: a differential-testing reference
// for the hand-written Scanner, and the heavyweight reference parser in the
// benchmarks (the role the Apache Xerces parser plays in the paper, where
// parsing 9.12 MB took 2.53 s versus 1 s for the authors' faster parser).
func StdParse(data []byte, h Handler) error {
	dec := xml.NewDecoder(bytes.NewReader(data))
	depth := 0
	inDoc := false
	var text strings.Builder
	flush := func() {
		if text.Len() == 0 {
			return
		}
		s := text.String()
		text.Reset()
		if strings.TrimSpace(s) == "" {
			return
		}
		h.Text(s)
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				if !inDoc {
					inDoc = true
					h.StartDocument()
				}
			} else {
				flush()
			}
			h.StartElement(t.Name.Local)
			for _, a := range t.Attr {
				// Skip namespace declarations; the paper's model
				// has no namespaces.
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				an := "@" + a.Name.Local
				h.StartElement(an)
				h.Text(a.Value)
				h.EndElement(an)
			}
			depth++
		case xml.EndElement:
			flush()
			h.EndElement(t.Name.Local)
			depth--
			if depth == 0 {
				h.EndDocument()
				inDoc = false
			}
		case xml.CharData:
			if depth > 0 {
				text.Write(t)
			}
		}
	}
	if depth != 0 {
		return &ParseError{Offset: int(dec.InputOffset()), Msg: "unexpected end of input"}
	}
	return nil
}

// StdParseReader is StdParse over an io.Reader.
func StdParseReader(r io.Reader, h Handler) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return StdParse(data, h)
}
