package core

// Sorted-int32-set helpers. XPush states are sorted arrays of AFA state ids
// (Sec. 4: "an XPush state is represented as a sorted array of AFA states,
// plus a 32 bit signature"); all operations below preserve sortedness so no
// explicit re-sorting is ever required.

// hashIDs computes the FNV-1a signature of a sorted id array.
func hashIDs(ids []int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		x := uint32(id)
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(x))
			h *= prime64
			x >>= 8
		}
	}
	return h
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unionSorted merges two sorted sets into out (a merge-join, per Sec. 4:
// "tbadd implies a merge-join of two sorted arrays").
func unionSorted(a, b, out []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// intersectSorted appends a ∩ b to out.
func intersectSorted(a, b, out []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// insertSorted inserts id into a sorted set, keeping it sorted and
// duplicate-free. The sets on the event hot path are tiny (early-fired oids,
// accept lists), so a shift-based insertion beats re-sorting.
func insertSorted(set []int32, id int32) []int32 {
	lo, hi := 0, len(set)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if set[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(set) && set[lo] == id {
		return set
	}
	set = append(set, 0)
	copy(set[lo+1:], set[lo:])
	set[lo] = id
	return set
}

// containsSorted reports whether a sorted set contains id.
func containsSorted(set []int32, id int32) bool {
	lo, hi := 0, len(set)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if set[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(set) && set[lo] == id
}

// subsetOfSorted reports whether every element of sub (sorted) is in set
// (sorted).
func subsetOfSorted(sub, set []int32) bool {
	j := 0
	for _, x := range sub {
		for j < len(set) && set[j] < x {
			j++
		}
		if j >= len(set) || set[j] != x {
			return false
		}
		j++
	}
	return true
}
