// Command xpushfilter evaluates a workload of XPath filters over a stream
// of XML documents using the XPush machine, printing the matching filters
// for every document — the message-broker core loop of the paper.
//
// Usage:
//
//	xpushfilter -queries filters.txt [-xml stream.xml] [-dtd schema.dtd]
//	            [-topdown] [-order] [-early] [-train] [-stats]
//
// The queries file holds one XPath filter per line; blank lines and lines
// starting with '#' are ignored. XML is read from -xml or stdin and may
// contain any number of concatenated documents.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	xpushstream "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "xpushfilter: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("xpushfilter", flag.ContinueOnError)
	queriesPath := fs.String("queries", "", "file with one XPath filter per line (required)")
	xmlPath := fs.String("xml", "", "XML stream file (default: stdin)")
	dtdPath := fs.String("dtd", "", "DTD file (enables -order and -train)")
	topdown := fs.Bool("topdown", false, "enable top-down pruning")
	order := fs.Bool("order", false, "enable the order optimization (needs -dtd)")
	early := fs.Bool("early", false, "enable early notification (implies -topdown)")
	train := fs.Bool("train", false, "warm the machine with synthetic training data (needs -dtd)")
	strict := fs.Bool("strict", false, "reject mixed element/text content")
	maxStates := fs.Int("maxstates", 0, "flush lazily built state tables past this count (0 = unlimited)")
	showQueries := fs.Bool("show-queries", false, "print matching filter text instead of indexes")
	stats := fs.Bool("stats", false, "print machine statistics after the stream")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *queriesPath == "" {
		return fmt.Errorf("-queries is required")
	}
	queries, err := readQueries(*queriesPath)
	if err != nil {
		return err
	}
	cfg := xpushstream.Config{
		TopDownPruning:     *topdown,
		OrderOptimization:  *order,
		EarlyNotification:  *early,
		Training:           *train,
		StrictMixedContent: *strict,
		MaxStates:          *maxStates,
	}
	if *dtdPath != "" {
		text, err := os.ReadFile(*dtdPath)
		if err != nil {
			return err
		}
		d, err := xpushstream.ParseDTD(string(text))
		if err != nil {
			return err
		}
		cfg.DTD = d
	}
	engine, err := xpushstream.Compile(queries, cfg)
	if err != nil {
		return err
	}

	in := stdin
	if *xmlPath != "" {
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	doc := 0
	err = engine.FilterStream(in, func(matches []int) {
		doc++
		fmt.Fprintf(w, "document %d: %d match(es)", doc, len(matches))
		if len(matches) > 0 {
			if *showQueries {
				fmt.Fprintln(w)
				for _, m := range matches {
					fmt.Fprintf(w, "  [%d] %s\n", m, engine.Query(m))
				}
			} else {
				fmt.Fprintf(w, " %v\n", matches)
			}
		} else {
			fmt.Fprintln(w)
		}
	})
	if err != nil {
		return err
	}
	if *stats {
		s := engine.Stats()
		fmt.Fprintf(w, "---\ndocuments=%d events=%d matches=%d\n", s.Documents, s.Events, s.Matches)
		fmt.Fprintf(w, "states=%d topdown-states=%d avg-state-size=%.2f\n", s.States, s.TopDownStates, s.AvgStateSize)
		fmt.Fprintf(w, "table lookups=%d hits=%d hit-ratio=%.4f flushes=%d\n", s.Lookups, s.Hits, s.HitRatio, s.Flushes)
	}
	return nil
}

func readQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return out, nil
}
