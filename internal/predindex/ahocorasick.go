package predindex

// Aho–Corasick dictionary automaton for the contains(·) predicate extension,
// and a plain prefix trie for starts-with(·), per the paper's pointer to
// Aho and Corasick's dictionary search tree (Sec. 2).

// acNode is one state of the Aho–Corasick automaton. Children are kept in a
// byte-indexed map during construction and flattened on build.
type acNode struct {
	children map[byte]int32
	fail     int32
	out      []int32 // predicate ids of patterns ending here
}

type acAutomaton struct {
	nodes []acNode
	built bool
	n     int // number of patterns
}

func (a *acAutomaton) add(pattern string, id int32) {
	if a.nodes == nil {
		a.nodes = []acNode{{children: map[byte]int32{}}}
	}
	cur := int32(0)
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		next, ok := a.nodes[cur].children[c]
		if !ok {
			next = int32(len(a.nodes))
			a.nodes = append(a.nodes, acNode{children: map[byte]int32{}})
			a.nodes[cur].children[c] = next
		}
		cur = next
	}
	a.nodes[cur].out = append(a.nodes[cur].out, id)
	a.n++
}

// build computes failure links (BFS) and merges output sets along them.
func (a *acAutomaton) build() {
	if a.nodes == nil {
		return
	}
	queue := make([]int32, 0, len(a.nodes))
	for _, next := range a.nodes[0].children {
		a.nodes[next].fail = 0
		queue = append(queue, next)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c, v := range a.nodes[u].children {
			queue = append(queue, v)
			f := a.nodes[u].fail
			for {
				if next, ok := a.nodes[f].children[c]; ok && next != v {
					a.nodes[v].fail = next
					break
				}
				if f == 0 {
					a.nodes[v].fail = 0
					break
				}
				f = a.nodes[f].fail
			}
			a.nodes[v].out = append(a.nodes[v].out, a.nodes[a.nodes[v].fail].out...)
		}
	}
	a.built = true
}

// match appends the ids of all contains-patterns occurring in text. Ids may
// repeat when a pattern occurs several times; the caller deduplicates.
func (a *acAutomaton) match(text string, out []int32) []int32 {
	if a.nodes == nil || a.n == 0 {
		return out
	}
	cur := int32(0)
	for i := 0; i < len(text); i++ {
		c := text[i]
		for {
			if next, ok := a.nodes[cur].children[c]; ok {
				cur = next
				break
			}
			if cur == 0 {
				break
			}
			cur = a.nodes[cur].fail
		}
		out = append(out, a.nodes[cur].out...)
	}
	return out
}

// trieNode is a byte trie for starts-with patterns.
type trieNode struct {
	children map[byte]*trieNode
	out      []int32
	n        int
}

func (t *trieNode) add(pattern string, id int32) {
	cur := t
	for i := 0; i < len(pattern); i++ {
		if cur.children == nil {
			cur.children = map[byte]*trieNode{}
		}
		next := cur.children[pattern[i]]
		if next == nil {
			next = &trieNode{}
			cur.children[pattern[i]] = next
		}
		cur = next
	}
	cur.out = append(cur.out, id)
	t.n++
}

// match appends the ids of all starts-with patterns that prefix text.
func (t *trieNode) match(text string, out []int32) []int32 {
	if t.n == 0 {
		return out
	}
	cur := t
	out = append(out, cur.out...)
	for i := 0; i < len(text); i++ {
		if cur.children == nil {
			return out
		}
		next := cur.children[text[i]]
		if next == nil {
			return out
		}
		cur = next
		out = append(out, cur.out...)
	}
	return out
}
