// Command querygen generates synthetic XPath filter workloads against the
// built-in datasets, mirroring the modified YFilter query generator used in
// the paper's evaluation (Sec. 7).
//
// Usage:
//
//	querygen -dataset protein -n 50000 -preds 1.15 > filters.txt
//	querygen -dataset nasa -n 1000 -preds 10.45 -descendant 0.1 -wildcard 0.1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "protein", "built-in dataset: protein or nasa")
	n := flag.Int("n", 1000, "number of filters")
	preds := flag.Float64("preds", 1.15, "mean atomic predicates per filter")
	wildcard := flag.Float64("wildcard", 0, "probability of a * wildcard per step")
	descendant := flag.Float64("descendant", 0, "probability of a // axis per step")
	nested := flag.Float64("nested", 0.2, "probability of a nested (bushy) predicate")
	orp := flag.Float64("or", 0, "probability of an or connector")
	notp := flag.Float64("not", 0, "probability of a not(...) wrapper")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	ds, ok := datagen.ByName(*dataset)
	if !ok {
		fatalf("unknown dataset %q (protein, nasa)", *dataset)
	}
	filters := workload.Generate(ds, workload.Params{
		Seed:           *seed,
		NumQueries:     *n,
		MeanPreds:      *preds,
		WildcardProb:   *wildcard,
		DescendantProb: *descendant,
		NestedPredProb: *nested,
		OrProb:         *orp,
		NotProb:        *notp,
	})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	fmt.Fprintf(bw, "# dataset=%s n=%d mean-preds=%.2f total-atomic-preds=%d seed=%d\n",
		ds.Name, *n, *preds, workload.TotalAtomicPredicates(filters), *seed)
	for _, f := range filters {
		fmt.Fprintln(bw, f.Source)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "querygen: "+format+"\n", args...)
	os.Exit(1)
}
