#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end cluster smoke: boot two WAL-backed
# xpushserve nodes and an xpushgate in front of them, drive
# workloads/smoke.props through the gate (zipfian popularity, 20% durable,
# churn + reconnect-storm phase, ~8s), and assert the run finished with
# zero errors, non-zero deliveries, and filters actually partitioned across
# both nodes.
#
# Usage: scripts/cluster_smoke.sh [json-out]
#
# The JSON report is left at json-out (default /tmp/xpushgate_smoke.json)
# so bench_gate.sh's gated-latency gate can reuse it instead of paying for
# a second run.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-/tmp/xpushgate_smoke.json}"
BASE="${XPUSHGATE_PORT_BASE:-19420}"
GATE_PORT="$BASE"
N1_PORT=$((BASE + 1))
N2_PORT=$((BASE + 2))
METRICS_PORT=$((BASE + 3))
N1_METRICS=$((BASE + 4))
N2_METRICS=$((BASE + 5))
N1_DEBUG=$((BASE + 6))
N2_DEBUG=$((BASE + 7))
TMP=$(mktemp -d)
PIDS=()
trap 'for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done; wait 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/" ./cmd/xpushserve ./cmd/xpushgate ./cmd/xpushload

# Nodes run with tracing sampled 1/1000 so the per-query cost profiler and
# the cross-hop trace plumbing are exercised under real load, not just in
# unit tests.
"$TMP/xpushserve" -addr "127.0.0.1:$N1_PORT" -metrics-addr "127.0.0.1:$N1_METRICS" \
  -debug-addr "127.0.0.1:$N1_DEBUG" -trace-sample 1000 -wal-dir "$TMP/wal1" >"$TMP/node1.log" 2>&1 &
PIDS+=($!)
"$TMP/xpushserve" -addr "127.0.0.1:$N2_PORT" -metrics-addr "127.0.0.1:$N2_METRICS" \
  -debug-addr "127.0.0.1:$N2_DEBUG" -trace-sample 1000 -wal-dir "$TMP/wal2" >"$TMP/node2.log" 2>&1 &
PIDS+=($!)
"$TMP/xpushgate" -addr "127.0.0.1:$GATE_PORT" -metrics-addr "127.0.0.1:$METRICS_PORT" \
  -nodes "127.0.0.1:$N1_PORT,127.0.0.1:$N2_PORT" \
  -node-debug "127.0.0.1:$N1_DEBUG,127.0.0.1:$N2_DEBUG" \
  -trace-sample 1000 >"$TMP/gate.log" 2>&1 &
PIDS+=($!)

# xpushload dials with retry/backoff, so no boot-wait is needed; a non-zero
# exit here means the run failed or a phase recorded errors.
if ! "$TMP/xpushload" -addr "127.0.0.1:$GATE_PORT" -workload workloads/smoke.props -json "$OUT"; then
  echo "cluster_smoke: xpushload through the gate failed; logs:" >&2
  tail -n 20 "$TMP/gate.log" "$TMP/node1.log" "$TMP/node2.log" >&2
  exit 1
fi

deliveries=$(awk -F: '/"deliveries"/ { gsub(/[^0-9]/, "", $2); s += $2 } END { print s + 0 }' "$OUT")
durable=$(awk -F: '/"durable_deliveries"/ { gsub(/[^0-9]/, "", $2); s += $2 } END { print s + 0 }' "$OUT")
churn=$(awk -F: '/"churn_ops"/ { gsub(/[^0-9]/, "", $2); s += $2 } END { print s + 0 }' "$OUT")
errors=$(awk -F: '/"errors"|"ack_errors"/ { gsub(/[^0-9]/, "", $2); s += $2 } END { print s + 0 }' "$OUT")
echo "cluster_smoke: $deliveries deliveries ($durable durable), $churn churn ops, $errors errors"
if [ "$errors" -ne 0 ]; then
  echo "cluster_smoke: FAIL — run recorded $errors errors" >&2
  tail -n 20 "$TMP/gate.log" >&2
  exit 1
fi
if [ "$deliveries" -eq 0 ]; then
  echo "cluster_smoke: FAIL — no deliveries measured through the gate" >&2
  exit 1
fi
if [ "$durable" -eq 0 ]; then
  echo "cluster_smoke: FAIL — no durable deliveries through the gate" >&2
  exit 1
fi
if [ "$churn" -eq 0 ]; then
  echo "cluster_smoke: FAIL — churn phase performed no subscription churn" >&2
  exit 1
fi

# The point of the gate is partitioning: both nodes must have seen real
# publish fan-out, visible in the gate's per-node ack-latency counters.
if command -v curl >/dev/null; then
  metrics=$(curl -fsS "http://127.0.0.1:$METRICS_PORT/metrics")
  for port in "$N1_PORT" "$N2_PORT"; do
    count=$(echo "$metrics" | awk -v n="node=\"127.0.0.1:$port\"" \
      '$0 ~ /^xpushgate_node_ack_latency_seconds_count/ && index($0, n) { print $2; exit }')
    if [ -z "${count:-}" ] || [ "$count" -eq 0 ]; then
      echo "cluster_smoke: FAIL — node 127.0.0.1:$port acked no publishes (no partitioned fan-out?)" >&2
      echo "$metrics" | grep '^xpushgate_' >&2
      exit 1
    fi
  done
  ups=$(echo "$metrics" | awk '/^xpushgate_node_up/ { s += $2 } END { print s + 0 }')
  if [ "$ups" -ne 2 ]; then
    echo "cluster_smoke: FAIL — expected 2 nodes up at end of run, got $ups" >&2
    exit 1
  fi
  echo "cluster_smoke: both nodes acked publishes, 2/2 up"

  # Observability assertions: the control-plane stall series and the
  # per-query cost profile must be populated on the gate and both nodes.
  # Presence checks match the always-emitted HELP/TYPE lines; families
  # that are per-connection (durable pumps) may have no samples at
  # scrape time once the load harness has disconnected.
  for want in xpushgate_subscribe_latency_seconds xpushgate_orphan_acks \
              xpushgate_traces_started_total; do
    if ! echo "$metrics" | grep -q "$want"; then
      echo "cluster_smoke: FAIL — gate metrics missing $want" >&2
      echo "$metrics" | grep '^xpushgate_' >&2
      exit 1
    fi
  done
  for mport in "$N1_METRICS" "$N2_METRICS"; do
    nm=$(curl -fsS "http://127.0.0.1:$mport/metrics")
    for want in xpushserve_subscribe_latency_seconds xpushserve_consolidation_in_progress \
                xpush_query_filter_seconds_total xpush_durable_pump_docs_scanned_total; do
      if ! echo "$nm" | grep -q "$want"; then
        echo "cluster_smoke: FAIL — node :$mport metrics missing $want" >&2
        echo "$nm" | grep -E '^(xpushserve_|xpush_)' >&2
        exit 1
      fi
    done
    subs=$(echo "$nm" | awk '/^xpushserve_subscribe_latency_seconds_count/ { print $2; exit }')
    if [ -z "${subs:-}" ] || [ "$subs" -eq 0 ]; then
      echo "cluster_smoke: FAIL — node :$mport observed no subscribe round trips" >&2
      exit 1
    fi
  done
  echo "cluster_smoke: stall + per-query series present on gate and both nodes"

  # One sampled publish is enough for the merged cross-hop trace to carry
  # node rows; with 1/1000 sampling the smoke's tens of thousands of
  # publishes guarantee several.
  merged=$(curl -fsS "http://127.0.0.1:$METRICS_PORT/debug/cluster/traces")
  if ! echo "$merged" | grep -q '"gate_publish"'; then
    echo "cluster_smoke: FAIL — merged cluster trace has no gate_publish root" >&2
    exit 1
  fi
  if ! echo "$merged" | grep -q 'deliver_write\|filter'; then
    echo "cluster_smoke: FAIL — merged cluster trace carries no node-side spans" >&2
    exit 1
  fi
  echo "cluster_smoke: merged cross-hop trace has gate and node spans"
else
  echo "cluster_smoke: curl unavailable, skipping gate metrics assertions"
fi

scripts/metric_lint.sh
echo "cluster_smoke: OK ($OUT)"
